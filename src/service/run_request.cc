#include "run_request.hh"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>

#include "cacheport/bank_select.hh"

namespace lbic
{
namespace service
{

namespace
{

/** Stable names for the enums SimConfig carries. */
const char *
replPolicyName(ReplPolicy p)
{
    return p == ReplPolicy::Random ? "random" : "lru";
}

ReplPolicy
parseReplPolicy(const std::string &s)
{
    return s == "random" ? ReplPolicy::Random : ReplPolicy::LRU;
}

const char *
disambiguationName(Disambiguation d)
{
    return d == Disambiguation::Conservative ? "conservative"
                                             : "perfect";
}

Disambiguation
parseDisambiguation(const std::string &s)
{
    return s == "conservative" ? Disambiguation::Conservative
                               : Disambiguation::Perfect;
}

/**
 * Values travel one per line, so the only characters that need
 * escaping are the line breaks themselves (and the escape char).
 */
std::string
encodeValue(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '%' || c == '\n' || c == '\r') {
            char buf[4];
            std::snprintf(buf, sizeof(buf), "%%%02x",
                          static_cast<unsigned char>(c));
            out += buf;
        } else {
            out.push_back(c);
        }
    }
    return out;
}

std::string
decodeValue(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] == '%' && i + 2 < s.size()) {
            const char hex[3] = {s[i + 1], s[i + 2], 0};
            out.push_back(static_cast<char>(
                std::strtoul(hex, nullptr, 16)));
            i += 2;
        } else {
            out.push_back(s[i]);
        }
    }
    return out;
}

std::string
u64s(std::uint64_t v)
{
    return std::to_string(v);
}

/** %.17g: the shortest-common form that round-trips IEEE doubles. */
std::string
d17(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

/**
 * Append the result-affecting configuration fields as sorted
 * key=value lines. Shared by the transport form (which adds the
 * host/observability fields on top) and the cache-key form.
 */
void
appendCoreFields(const SimConfig &c,
                 std::map<std::string, std::string> &kv)
{
    kv["workload"] = encodeValue(c.workload);
    kv["ports"] = encodeValue(c.port_spec);
    kv["seed"] = u64s(c.seed);
    kv["insts"] = u64s(c.max_insts);
    kv["ff"] = u64s(c.ff_insts);
    kv["warmup"] = u64s(c.warmup_insts);
    kv["banksel"] = bankSelectFnName(c.select_fn);
    kv["storeq"] = u64s(c.store_queue_depth);

    kv["fetch_width"] = u64s(c.core.fetch_width);
    kv["issue_width"] = u64s(c.core.issue_width);
    kv["commit_width"] = u64s(c.core.commit_width);
    kv["ruu"] = u64s(c.core.ruu_size);
    kv["lsq"] = u64s(c.core.lsq_size);
    kv["int_alu"] = u64s(c.core.int_alu_units);
    kv["int_muldiv"] = u64s(c.core.int_mult_div_units);
    kv["fp_add"] = u64s(c.core.fp_add_units);
    kv["fp_muldiv"] = u64s(c.core.fp_mult_div_units);
    kv["mem_window"] = u64s(c.core.mem_request_window);
    kv["disambig"] = disambiguationName(c.core.disambiguation);
    kv["watchdog"] = u64s(c.core.deadlock_threshold);

    kv["l1_size"] = u64s(c.memory.l1.size_bytes);
    kv["l1_line"] = u64s(c.memory.l1.line_bytes);
    kv["l1_assoc"] = u64s(c.memory.l1.assoc);
    kv["l1_repl"] = replPolicyName(c.memory.l1.repl);
    kv["l2_size"] = u64s(c.memory.l2.size_bytes);
    kv["l2_line"] = u64s(c.memory.l2.line_bytes);
    kv["l2_assoc"] = u64s(c.memory.l2.assoc);
    kv["l2_repl"] = replPolicyName(c.memory.l2.repl);
    kv["l1_lat"] = u64s(c.memory.l1_hit_latency);
    kv["l2_lat"] = u64s(c.memory.l2_latency);
    kv["mem_lat"] = u64s(c.memory.mem_latency);
    kv["mshrs"] = u64s(c.memory.max_outstanding);
    kv["miss_per_cycle"] = u64s(c.memory.miss_requests_per_cycle);

    kv["check"] = c.check ? "1" : "0";
    kv["audit"] = c.audit ? "1" : "0";
    kv["audit_interval"] = u64s(c.audit_interval);
    kv["max_cycles"] = u64s(c.max_cycles);
}

std::string
renderLines(const std::map<std::string, std::string> &kv)
{
    std::string out;
    for (const auto &e : kv) {
        out += e.first;
        out.push_back('=');
        out += e.second;
        out.push_back('\n');
    }
    return out;
}

} // anonymous namespace

std::string
hashHex(std::uint64_t h)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016" PRIx64, h);
    return buf;
}

RunRequest
RunRequest::fromJob(const SweepJob &job)
{
    RunRequest req;
    req.label = job.label;
    req.config = job.config;
    return req;
}

SweepJob
RunRequest::toJob() const
{
    SweepJob job;
    job.label = label;
    job.config = config;
    return job;
}

std::string
RunRequest::serialize() const
{
    std::map<std::string, std::string> kv;
    appendCoreFields(config, kv);
    kv["label"] = encodeValue(label);
    kv["attempt"] = u64s(attempt);
    kv["replay"] = encodeValue(config.replay_trace);
    kv["max_wall_ms"] = d17(config.max_wall_ms);
    kv["trace_path"] = encodeValue(config.trace_path);
    kv["trace_format"] = encodeValue(config.trace_format);
    kv["interval"] = u64s(config.interval);
    kv["interval_out"] = encodeValue(config.interval_out);
    kv["interval_stats"] = encodeValue(config.interval_stats);
    kv["profile"] = config.profile ? "1" : "0";
    kv["profile_out"] = encodeValue(config.profile_out);
    kv["stats_json"] = encodeValue(config.stats_json);
    return "lbrq " + std::to_string(run_request_version) + "\n"
           + renderLines(kv);
}

bool
RunRequest::deserialize(const std::string &text, RunRequest &out,
                        std::string *err)
{
    auto fail = [&](const std::string &why) {
        if (err)
            *err = why;
        return false;
    };

    std::size_t pos = 0;
    auto nextLine = [&](std::string &line) {
        if (pos >= text.size())
            return false;
        const std::size_t nl = text.find('\n', pos);
        if (nl == std::string::npos) {
            line = text.substr(pos);
            pos = text.size();
        } else {
            line = text.substr(pos, nl - pos);
            pos = nl + 1;
        }
        return true;
    };

    std::string line;
    if (!nextLine(line))
        return fail("empty request");
    if (line != "lbrq " + std::to_string(run_request_version))
        return fail("bad request header '" + line + "'");

    std::map<std::string, std::string> kv;
    while (nextLine(line)) {
        if (line.empty())
            continue;
        const std::size_t eq = line.find('=');
        if (eq == std::string::npos)
            return fail("malformed line '" + line + "'");
        kv[line.substr(0, eq)] = line.substr(eq + 1);
    }

    auto str = [&](const char *key, const std::string &def) {
        const auto it = kv.find(key);
        return it == kv.end() ? def : decodeValue(it->second);
    };
    auto u64 = [&](const char *key, std::uint64_t def) {
        const auto it = kv.find(key);
        return it == kv.end()
                   ? def
                   : std::strtoull(it->second.c_str(), nullptr, 10);
    };
    auto u32 = [&](const char *key, unsigned def) {
        return static_cast<unsigned>(u64(key, def));
    };
    auto dbl = [&](const char *key, double def) {
        const auto it = kv.find(key);
        return it == kv.end()
                   ? def
                   : std::strtod(it->second.c_str(), nullptr);
    };
    auto flag = [&](const char *key, bool def) {
        const auto it = kv.find(key);
        return it == kv.end() ? def : it->second == "1";
    };

    out = RunRequest{};
    SimConfig &c = out.config;
    out.label = str("label", "");
    out.attempt = u32("attempt", 1);

    c.workload = str("workload", c.workload);
    c.port_spec = str("ports", c.port_spec);
    c.seed = u64("seed", c.seed);
    c.max_insts = u64("insts", c.max_insts);
    c.ff_insts = u64("ff", c.ff_insts);
    c.warmup_insts = u64("warmup", c.warmup_insts);
    c.select_fn =
        parseBankSelectFn(str("banksel", bankSelectFnName(c.select_fn)));
    c.store_queue_depth = u32("storeq", c.store_queue_depth);

    c.core.fetch_width = u32("fetch_width", c.core.fetch_width);
    c.core.issue_width = u32("issue_width", c.core.issue_width);
    c.core.commit_width = u32("commit_width", c.core.commit_width);
    c.core.ruu_size = u32("ruu", c.core.ruu_size);
    c.core.lsq_size = u32("lsq", c.core.lsq_size);
    c.core.int_alu_units = u32("int_alu", c.core.int_alu_units);
    c.core.int_mult_div_units =
        u32("int_muldiv", c.core.int_mult_div_units);
    c.core.fp_add_units = u32("fp_add", c.core.fp_add_units);
    c.core.fp_mult_div_units =
        u32("fp_muldiv", c.core.fp_mult_div_units);
    c.core.mem_request_window =
        u32("mem_window", c.core.mem_request_window);
    c.core.disambiguation = parseDisambiguation(
        str("disambig", disambiguationName(c.core.disambiguation)));
    c.core.deadlock_threshold =
        u32("watchdog", c.core.deadlock_threshold);

    c.memory.l1.size_bytes = u64("l1_size", c.memory.l1.size_bytes);
    c.memory.l1.line_bytes = u32("l1_line", c.memory.l1.line_bytes);
    c.memory.l1.assoc = u32("l1_assoc", c.memory.l1.assoc);
    c.memory.l1.repl =
        parseReplPolicy(str("l1_repl", replPolicyName(c.memory.l1.repl)));
    c.memory.l2.size_bytes = u64("l2_size", c.memory.l2.size_bytes);
    c.memory.l2.line_bytes = u32("l2_line", c.memory.l2.line_bytes);
    c.memory.l2.assoc = u32("l2_assoc", c.memory.l2.assoc);
    c.memory.l2.repl =
        parseReplPolicy(str("l2_repl", replPolicyName(c.memory.l2.repl)));
    c.memory.l1_hit_latency = u32("l1_lat", c.memory.l1_hit_latency);
    c.memory.l2_latency = u32("l2_lat", c.memory.l2_latency);
    c.memory.mem_latency = u32("mem_lat", c.memory.mem_latency);
    c.memory.max_outstanding = u32("mshrs", c.memory.max_outstanding);
    c.memory.miss_requests_per_cycle =
        u32("miss_per_cycle", c.memory.miss_requests_per_cycle);

    c.check = flag("check", c.check);
    c.audit = flag("audit", c.audit);
    c.audit_interval = u64("audit_interval", c.audit_interval);
    c.max_cycles = u64("max_cycles", c.max_cycles);
    c.max_wall_ms = dbl("max_wall_ms", c.max_wall_ms);

    c.replay_trace = str("replay", c.replay_trace);
    c.trace_path = str("trace_path", c.trace_path);
    c.trace_format = str("trace_format", c.trace_format);
    c.interval = u64("interval", c.interval);
    c.interval_out = str("interval_out", c.interval_out);
    c.interval_stats = str("interval_stats", c.interval_stats);
    c.profile = flag("profile", c.profile);
    c.profile_out = str("profile_out", c.profile_out);
    c.stats_json = str("stats_json", c.stats_json);
    return true;
}

std::string
RunRequest::cacheText() const
{
    std::map<std::string, std::string> kv;
    appendCoreFields(config, kv);
    return "lbck-req " + std::to_string(run_request_version) + "\n"
           + renderLines(kv);
}

std::string
RunRequest::configHash() const
{
    return hashHex(fnv1a(cacheText()));
}

namespace
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        if (static_cast<unsigned char>(c) >= 0x20)
            out.push_back(c);
    }
    return out;
}

std::string
quoted(const std::string &s)
{
    return "\"" + jsonEscape(s) + "\"";
}

/** Scan one flat-JSON scalar; mirrors the ledger reader's grammar. */
bool
scanValue(const std::string &s, std::size_t &i, std::string &value,
          bool &was_string)
{
    value.clear();
    if (i >= s.size())
        return false;
    if (s[i] == '"') {
        was_string = true;
        for (++i; i < s.size(); ++i) {
            if (s[i] == '\\') {
                if (++i >= s.size())
                    return false;
                value.push_back(s[i]);
            } else if (s[i] == '"') {
                ++i;
                return true;
            } else {
                value.push_back(s[i]);
            }
        }
        return false;
    }
    was_string = false;
    while (i < s.size() && s[i] != ',' && s[i] != '}') {
        if (!std::isspace(static_cast<unsigned char>(s[i])))
            value.push_back(s[i]);
        ++i;
    }
    return !value.empty();
}

} // anonymous namespace

std::string
RunOutcome::toJson() const
{
    std::map<std::string, std::string> kv;
    kv["label"] = quoted(label);
    kv["status"] = quoted(ok ? "ok" : "failed");
    kv["cached"] = cached ? "true" : "false";
    kv["error"] = quoted(error);
    kv["error_kind"] = quoted(error_kind);
    kv["signal_num"] = std::to_string(signal_num);
    kv["signal_name"] = quoted(signal_name);
    kv["attempts"] = std::to_string(attempts);
    kv["wall_ms"] = d17(wall_ms);
    kv["instructions"] = u64s(result.instructions);
    kv["cycles"] = u64s(result.cycles);
    kv["warmup_instructions"] = u64s(result.warmup_instructions);
    kv["warmup_cycles"] = u64s(result.warmup_cycles);

    const SweepMetrics &m = metrics;
    kv["m.l1_miss_rate"] = d17(m.l1_miss_rate);
    kv["m.loads_executed"] = d17(m.loads_executed);
    kv["m.stores_executed"] = d17(m.stores_executed);
    kv["m.loads_forwarded"] = d17(m.loads_forwarded);
    kv["m.requests_seen"] = d17(m.requests_seen);
    kv["m.requests_granted"] = d17(m.requests_granted);
    kv["m.peak_width"] = u64s(m.peak_width);
    kv["m.requests_rejected"] = d17(m.requests_rejected);
    for (unsigned c = 0; c < num_reject_causes; ++c) {
        kv[std::string("m.rejects.")
           + rejectCauseName(static_cast<RejectCause>(c))] =
            u64s(m.rejects[c]);
    }
    kv["m.reject_bank_samples"] = u64s(m.reject_bank_samples);
    kv["m.reject_banks"] = u64s(m.reject_banks);
    kv["m.fetch_width"] = u64s(m.fetch_width);
    kv["m.commit_width"] = u64s(m.commit_width);
    kv["m.cycles_base"] = u64s(m.cycles_base);
    for (unsigned c = 0; c < observe::num_stall_causes; ++c) {
        const char *name =
            observe::stallCauseName(static_cast<observe::StallCause>(c));
        kv[std::string("m.stall_cycles.") + name] =
            u64s(m.stall_cycles[c]);
        kv[std::string("m.stall_slots.") + name] =
            u64s(m.stall_slots[c]);
    }
    kv["m.slots_committed"] = u64s(m.slots_committed);
    kv["m.dispatch_used"] = u64s(m.dispatch_used);
    for (unsigned c = 0; c < observe::num_dispatch_causes; ++c) {
        kv[std::string("m.dispatch_stalls.")
           + observe::dispatchCauseName(
                 static_cast<observe::DispatchCause>(c))] =
            u64s(m.dispatch_stalls[c]);
    }

    std::string out = "{";
    bool first = true;
    for (const auto &e : kv) {
        out += (first ? "\"" : ",\"") + e.first + "\":" + e.second;
        first = false;
    }
    out += "}";
    return out;
}

bool
RunOutcome::fromJson(const std::string &line, RunOutcome &out)
{
    std::size_t i = line.find_first_not_of(" \t\r");
    if (i == std::string::npos || line[i] != '{')
        return false;
    ++i;
    out = RunOutcome{};

    // Name → slot maps for the enum-indexed arrays, resolved once.
    auto matchCause = [](const std::string &key,
                         const std::string &prefix, unsigned count,
                         const char *(*name)(unsigned)) -> int {
        if (key.rfind(prefix, 0) != 0)
            return -1;
        const std::string tail = key.substr(prefix.size());
        for (unsigned c = 0; c < count; ++c) {
            if (tail == name(c))
                return static_cast<int>(c);
        }
        return -1;
    };
    auto rejectName = [](unsigned c) {
        return rejectCauseName(static_cast<RejectCause>(c));
    };
    auto stallName = [](unsigned c) {
        return observe::stallCauseName(
            static_cast<observe::StallCause>(c));
    };
    auto dispatchName = [](unsigned c) {
        return observe::dispatchCauseName(
            static_cast<observe::DispatchCause>(c));
    };

    for (;;) {
        while (i < line.size()
               && (std::isspace(static_cast<unsigned char>(line[i]))
                   || line[i] == ','))
            ++i;
        if (i >= line.size())
            return false;
        if (line[i] == '}')
            break;
        std::string key;
        bool was_string = false;
        if (!scanValue(line, i, key, was_string) || !was_string)
            return false;
        while (i < line.size()
               && std::isspace(static_cast<unsigned char>(line[i])))
            ++i;
        if (i >= line.size() || line[i] != ':')
            return false;
        ++i;
        while (i < line.size()
               && std::isspace(static_cast<unsigned char>(line[i])))
            ++i;
        std::string value;
        if (!scanValue(line, i, value, was_string))
            return false;

        auto u64v = [&] {
            return std::strtoull(value.c_str(), nullptr, 10);
        };
        auto dblv = [&] {
            return std::strtod(value.c_str(), nullptr);
        };

        if (key == "label")
            out.label = value;
        else if (key == "status")
            out.ok = value == "ok";
        else if (key == "cached")
            out.cached = value == "true";
        else if (key == "error")
            out.error = value;
        else if (key == "error_kind")
            out.error_kind = value;
        else if (key == "signal_num")
            out.signal_num = static_cast<int>(
                std::strtol(value.c_str(), nullptr, 10));
        else if (key == "signal_name")
            out.signal_name = value;
        else if (key == "attempts")
            out.attempts = static_cast<unsigned>(u64v());
        else if (key == "wall_ms")
            out.wall_ms = dblv();
        else if (key == "instructions")
            out.result.instructions = u64v();
        else if (key == "cycles")
            out.result.cycles = u64v();
        else if (key == "warmup_instructions")
            out.result.warmup_instructions = u64v();
        else if (key == "warmup_cycles")
            out.result.warmup_cycles = u64v();
        else if (key == "m.l1_miss_rate")
            out.metrics.l1_miss_rate = dblv();
        else if (key == "m.loads_executed")
            out.metrics.loads_executed = dblv();
        else if (key == "m.stores_executed")
            out.metrics.stores_executed = dblv();
        else if (key == "m.loads_forwarded")
            out.metrics.loads_forwarded = dblv();
        else if (key == "m.requests_seen")
            out.metrics.requests_seen = dblv();
        else if (key == "m.requests_granted")
            out.metrics.requests_granted = dblv();
        else if (key == "m.peak_width")
            out.metrics.peak_width = static_cast<unsigned>(u64v());
        else if (key == "m.requests_rejected")
            out.metrics.requests_rejected = dblv();
        else if (key == "m.reject_bank_samples")
            out.metrics.reject_bank_samples = u64v();
        else if (key == "m.reject_banks")
            out.metrics.reject_banks = static_cast<unsigned>(u64v());
        else if (key == "m.fetch_width")
            out.metrics.fetch_width = static_cast<unsigned>(u64v());
        else if (key == "m.commit_width")
            out.metrics.commit_width = static_cast<unsigned>(u64v());
        else if (key == "m.cycles_base")
            out.metrics.cycles_base = u64v();
        else if (key == "m.slots_committed")
            out.metrics.slots_committed = u64v();
        else if (key == "m.dispatch_used")
            out.metrics.dispatch_used = u64v();
        else if (int c = matchCause(key, "m.rejects.",
                                    num_reject_causes, rejectName);
                 c >= 0)
            out.metrics.rejects[static_cast<unsigned>(c)] = u64v();
        else if (int c = matchCause(key, "m.stall_cycles.",
                                    observe::num_stall_causes,
                                    stallName);
                 c >= 0)
            out.metrics.stall_cycles[static_cast<unsigned>(c)] =
                u64v();
        else if (int c = matchCause(key, "m.stall_slots.",
                                    observe::num_stall_causes,
                                    stallName);
                 c >= 0)
            out.metrics.stall_slots[static_cast<unsigned>(c)] = u64v();
        else if (int c = matchCause(key, "m.dispatch_stalls.",
                                    observe::num_dispatch_causes,
                                    dispatchName);
                 c >= 0)
            out.metrics.dispatch_stalls[static_cast<unsigned>(c)] =
                u64v();
        // Unknown keys are skipped: forward compatibility.
    }
    return true;
}

RunOutcome
RunOutcome::fromSweepResult(const SweepResult &r)
{
    RunOutcome out;
    out.label = r.label;
    out.ok = r.ok;
    out.error = r.error;
    out.error_kind = r.error_kind;
    out.signal_num = r.signal_num;
    out.signal_name = r.signal_name;
    out.attempts = r.attempts;
    out.wall_ms = r.wall_ms;
    out.result = r.result;
    out.metrics = r.metrics;
    return out;
}

SweepResult
RunOutcome::toSweepResult() const
{
    SweepResult r;
    r.label = label;
    r.ok = ok;
    r.error = error;
    r.error_kind = error_kind;
    r.signal_num = signal_num;
    r.signal_name = signal_name;
    r.attempts = attempts;
    r.wall_ms = wall_ms;
    r.result = result;
    r.metrics = metrics;
    return r;
}

} // namespace service
} // namespace lbic
