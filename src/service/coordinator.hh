/**
 * @file
 * Crash-isolated multi-process sweep coordinator.
 *
 * The in-process SweepRunner (sim/sweep.hh) isolates C++ exceptions;
 * it cannot survive a worker that segfaults, is OOM-killed or hangs
 * in a syscall -- process death takes the whole pool down. The
 * Coordinator shards jobs across forked worker *processes* instead,
 * so the blast radius of any failure is one job attempt:
 *
 *   - every cache-miss job is dispatched to a worker over a pipe
 *     protocol (one in-flight job per worker);
 *   - a worker that dies (SIGSEGV, SIGKILL, OOM, nonzero exit) is
 *     reaped, its in-flight job is re-queued, and a replacement is
 *     spawned after exponential backoff;
 *   - a job may be given a wall-clock budget (job_timeout_ms): past
 *     it the coordinator SIGKILLs the worker and treats the death as
 *     a timeout;
 *   - a poison job -- one that kills poison_kills workers in a row --
 *     is marked failed (error_kind "signal"/"timeout"/"worker_exit",
 *     with signal provenance) instead of being retried forever;
 *   - results are merged in submission order, so the outcome vector
 *     (and any table or JSON derived from it) is byte-identical to a
 *     clean single-process sweep.
 *
 * When a persistent store (service/result_store.hh) is configured,
 * every request is first answered from it; only the delta is
 * simulated, and newly simulated ok outcomes are written back. With
 * workers == 0 the misses run on the in-process thread pool
 * (SweepRunner with the supplied SweepPolicy), which turns the store
 * into a pure cache for ordinary sweeps.
 *
 * Worker protocol (all frames over the worker's stdin/stdout pipes):
 *
 *   worker -> coordinator:  "lbsw-rdy\n"             once, at start
 *   coordinator -> worker:  "JOB <bytes>\n<request>"  one at a time
 *   worker -> coordinator:  "RES <bytes>\n<outcome>"  one per job
 *   coordinator -> worker:  "BYE\n"                   orderly quit
 *
 * Workers are either forked in-image (worker_exe empty; used by the
 * tests) or fork+exec'd as `<worker_exe> worker` -- the `worker`
 * subcommand every bench driver answers by calling runWorkerLoop(),
 * giving each driver a crash-isolated twin of its normal sweep.
 *
 * If some jobs still failed at the end, a resumable manifest (the
 * failed labels, kinds and store ids) is written next to the store
 * so a follow-up `store=` run can simulate exactly the missing
 * cells; the driver exits nonzero on partial results either way.
 *
 * Fault injection (tests and the crash-smoke CI job): see
 * workerFaultFromEnv() -- LBIC_WORKER_FAULT="<kind>@<label-substr>
 * [@<max-attempt>]" makes a worker SIGKILL itself, exit nonzero or
 * busy-hang when it receives a matching job, and LBIC_STORE_TEAR
 * makes the store write a torn record (result_store.hh).
 */

#ifndef LBIC_SERVICE_COORDINATOR_HH
#define LBIC_SERVICE_COORDINATOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "service/result_store.hh"
#include "service/run_request.hh"
#include "sim/sweep.hh"

namespace lbic
{
namespace service
{

/** Knobs of one coordinator run. */
struct CoordinatorOptions
{
    /**
     * Worker processes to shard cache-miss jobs across. 0 runs the
     * misses on the in-process SweepRunner thread pool instead (the
     * store still answers hits) -- no processes are forked.
     */
    unsigned workers = 0;

    /** Result-store directory; empty disables the store. */
    std::string store_dir;

    /**
     * Executable to fork+exec as `<worker_exe> worker`. Empty forks
     * workers in-image (runWorkerLoop in the child, no exec).
     */
    std::string worker_exe;

    /**
     * Per-job wall budget enforced at the process level: a worker
     * whose job outlives this is SIGKILLed and the death is recorded
     * as error_kind "timeout". 0 disables. (In-worker parity is the
     * SweepPolicy max_wall_ms watchdog, which fires first when both
     * are set; this one also catches hangs in syscalls the in-process
     * watchdog can never see.)
     */
    double job_timeout_ms = 0.0;

    /** Worker deaths before a job is declared poison and failed. */
    unsigned poison_kills = 2;

    /** First respawn backoff; doubles per consecutive death. */
    unsigned respawn_backoff_ms = 50;

    /**
     * Consecutive deaths of one worker slot (without completing a
     * job in between) before the slot is abandoned. When every slot
     * is abandoned, remaining jobs fail with error_kind
     * "worker_exit" rather than waiting forever.
     */
    unsigned max_consecutive_respawns = 5;

    /** git SHA stamped into store keys (store invalidation). */
    std::string git_sha = "unknown";

    /**
     * Failure policy applied to the simulations: max_cycles /
     * max_wall_ms are folded into each job's config before dispatch
     * (so in-worker watchdogs see them), retries bounds coordinator
     * re-dispatch of transient ("exception") failures, and the whole
     * policy drives the in-process pool when workers == 0.
     */
    SweepPolicy policy;

    /** Thread count for the workers == 0 in-process pool (0=hw). */
    unsigned in_process_threads = 0;

    /**
     * Bound on how long to wait for *another* coordinator's claim on
     * a key before simulating it ourselves anyway (duplicated work
     * beats deadlock on a crashed peer the pid check cannot see,
     * e.g. across hosts).
     */
    double claim_wait_ms = 10000.0;
};

/** Host-side accounting of one worker slot across the run. */
struct WorkerSlotStats
{
    unsigned slot = 0;
    std::size_t jobs = 0;    //!< results this slot delivered
    std::size_t deaths = 0;  //!< times a process in this slot died
    std::size_t spawns = 0;  //!< processes forked into this slot
    double busy_ms = 0.0;    //!< summed reported job wall clock
};

/** Everything a coordinator run produced. */
struct CoordinatorReport
{
    /** One outcome per request, submission order. */
    std::vector<RunOutcome> outcomes;

    /** @{ @name Store traffic */
    std::size_t cache_hits = 0;
    std::size_t cache_misses = 0;
    std::size_t stored = 0;      //!< records written this run
    std::size_t quarantined = 0; //!< corrupt records set aside
    /** @} */

    /** @{ @name Process-level fault accounting */
    std::size_t simulated = 0;     //!< jobs actually executed
    std::size_t worker_deaths = 0; //!< crashes + timeouts + exits
    std::size_t timeouts = 0;      //!< deaths caused by job_timeout_ms
    std::size_t respawns = 0;      //!< replacement workers forked
    std::size_t poisoned = 0;      //!< jobs failed as poison
    /** @} */

    /** True when worker processes were used (workers > 0). */
    bool used_processes = false;

    /** Per-slot accounting (used_processes only). */
    std::vector<WorkerSlotStats> slots;

    /** Thread-pool telemetry (workers == 0 path only). */
    SweepTelemetry thread_telemetry;
    bool has_thread_telemetry = false;

    /** Resumable manifest path; empty when all jobs succeeded. */
    std::string manifest_path;

    /** Requests whose final outcome is failed. */
    std::size_t failures() const
    {
        std::size_t n = 0;
        for (const RunOutcome &o : outcomes)
            n += o.ok ? 0 : 1;
        return n;
    }
};

/** Shards requests across processes, merges deterministically. */
class Coordinator
{
  public:
    explicit Coordinator(CoordinatorOptions opts);

    /**
     * Answer every request -- from the store when possible, by
     * simulation otherwise -- and return the full report. Outcomes
     * are index-aligned with @p requests regardless of scheduling.
     */
    CoordinatorReport run(const std::vector<RunRequest> &requests);

  private:
    CoordinatorOptions opts_;
};

/**
 * Body of the `worker` subcommand: read JOB frames from @p in_fd,
 * simulate each request, write RES frames to @p out_fd until BYE or
 * EOF. Returns the process exit code (0 on orderly shutdown). The
 * caller should treat @p out_fd as owned by the protocol afterwards
 * (runWorkerLoop redirects stray stdout writes to stderr when
 * out_fd is stdout, so logging cannot corrupt frames).
 */
int runWorkerLoop(int in_fd, int out_fd);

/** One parsed fault-injection directive (see header comment). */
struct WorkerFault
{
    enum class Kind
    {
        None,
        SigKill, //!< raise(SIGKILL) on receipt of a matching job
        Exit,    //!< _exit(3) on receipt of a matching job
        Hang,    //!< busy-wait forever (exercises the hard timeout)
    };
    Kind kind = Kind::None;
    std::string label_substr;
    unsigned max_attempt = ~0u; //!< inject only while attempt <= this

    bool
    matches(const std::string &label, unsigned attempt) const
    {
        return kind != Kind::None && attempt <= max_attempt
               && label.find(label_substr) != std::string::npos;
    }
};

/** Parse LBIC_WORKER_FAULT ("sigkill@swim/bank:4@1"); None if unset. */
WorkerFault workerFaultFromEnv();

} // namespace service
} // namespace lbic

#endif // LBIC_SERVICE_COORDINATOR_HH
