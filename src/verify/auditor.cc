#include "auditor.hh"

#include <sstream>

#include "common/sim_error.hh"

namespace lbic
{
namespace verify
{

void
InvariantAuditor::audit(Cycle now)
{
    for (const Check &check : checks_) {
        const std::string diagnosis = check.fn();
        if (!diagnosis.empty()) {
            std::ostringstream os;
            os << "invariant '" << check.name << "' violated at cycle "
               << now << ": " << diagnosis;
            throw SimError(SimErrorKind::CheckFailure, os.str());
        }
    }
    ++audits_;
}

std::vector<std::string>
InvariantAuditor::names() const
{
    std::vector<std::string> out;
    out.reserve(checks_.size());
    for (const Check &check : checks_)
        out.push_back(check.name);
    return out;
}

} // namespace verify
} // namespace lbic
