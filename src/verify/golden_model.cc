#include "golden_model.hh"

#include <sstream>

#include "common/sim_error.hh"
#include "isa/op_class.hh"

namespace lbic
{
namespace verify
{

GoldenChecker::GoldenChecker(std::unique_ptr<Workload> shadow)
    : shadow_(std::move(shadow))
{}

void
GoldenChecker::fail(const DynInst &inst, const std::string &what) const
{
    std::ostringstream os;
    os << "golden-model divergence at committed seq " << inst.seq
       << " (" << opClassName(inst.op);
    if (inst.isMem())
        os << " @0x" << std::hex << inst.addr << std::dec;
    os << "): " << what;
    throw SimError(SimErrorKind::CheckFailure, os.str());
}

void
GoldenChecker::checkShadowStream(const DynInst &inst)
{
    DynInst golden;
    if (shadow_ended_ || !shadow_->next(golden)) {
        shadow_ended_ = true;
        fail(inst, "core committed an instruction past the end of the "
                   "architectural stream");
    }
    if (inst.op != golden.op || inst.dst != golden.dst
        || inst.src != golden.src || inst.addr != golden.addr
        || inst.size != golden.size) {
        std::ostringstream os;
        os << "committed instruction diverges from the architectural "
              "stream: expected "
           << opClassName(golden.op) << " dst=" << golden.dst
           << " src=[" << golden.src[0] << "," << golden.src[1]
           << "] addr=0x" << std::hex << golden.addr << std::dec
           << ", got " << opClassName(inst.op) << " dst=" << inst.dst
           << " src=[" << inst.src[0] << "," << inst.src[1]
           << "] addr=0x" << std::hex << inst.addr << std::dec;
        fail(inst, os.str());
    }
}

void
GoldenChecker::skipShadow(std::uint64_t n)
{
    // Fast-forwarded instructions never commit, so only the shadow
    // stream's cursor moves; the gapless-seq counter stays put (the
    // pipeline's sequence numbers start at 0 regardless of how far
    // the stream was advanced first). Stores skipped here have long
    // since drained architecturally, so the empty per-address map is
    // the correct post-skip state: later loads may read the cache
    // freely.
    DynInst golden;
    for (std::uint64_t i = 0; i < n && shadow_; ++i) {
        if (!shadow_->next(golden)) {
            shadow_ended_ = true;
            break;
        }
    }
}

void
GoldenChecker::onCommit(const DynInst &inst, const CommitInfo &info,
                        Cycle commit_cycle)
{
    if (inst.seq != next_seq_) {
        std::ostringstream os;
        os << "commit order broken: expected seq " << next_seq_
           << " next";
        fail(inst, os.str());
    }
    ++next_seq_;
    ++checked_;

    if (shadow_)
        checkShadowStream(inst);

    if (!inst.isMem())
        return;

    const auto it = last_store_.find(inst.addr);

    if (inst.isLoad()) {
        ++loads_;
        if (info.forwarded) {
            ++forwards_;
            // The architecturally-correct source is the youngest older
            // store to the same address. All instructions older than
            // this load have committed (commit is in order), so the
            // model's per-address record *is* that store.
            if (it == last_store_.end()) {
                fail(inst, "load claims forwarding from seq "
                               + std::to_string(info.src_store)
                               + " but no store to this address "
                                 "precedes it");
            }
            if (it->second.seq != info.src_store) {
                std::ostringstream os;
                os << "load forwarded from store seq "
                   << info.src_store
                   << " but the youngest older store to this address "
                      "is seq " << it->second.seq << " (stale data)";
                fail(inst, os.str());
            }
            return;
        }
        if (info.mem_cycle == no_cycle)
            fail(inst, "load committed without being serviced by "
                       "either forwarding or the cache");
        if (it != last_store_.end()) {
            const LastStore &st = it->second;
            // A cache read is only architecturally safe once the
            // youngest older same-address store has (a) drained its
            // write into the cache and (b) left the window -- while it
            // was still in flight the LSQ was required to forward.
            if (st.drain_cycle == no_cycle
                || st.drain_cycle > info.mem_cycle) {
                std::ostringstream os;
                os << "load read the cache at cycle " << info.mem_cycle
                   << " before older store seq " << st.seq
                   << " drained its write (drain cycle ";
                if (st.drain_cycle == no_cycle)
                    os << "never";
                else
                    os << st.drain_cycle;
                os << "): stale data";
                fail(inst, os.str());
            }
            if (st.commit_cycle >= info.mem_cycle) {
                std::ostringstream os;
                os << "load read the cache at cycle " << info.mem_cycle
                   << " while older store seq " << st.seq
                   << " was still in the window (committed at cycle "
                   << st.commit_cycle
                   << "); it should have been forwarded";
                fail(inst, os.str());
            }
        }
        return;
    }

    // Store: it must have drained (been granted its cache write)
    // before retiring, and same-address drains must respect program
    // order -- an out-of-order drain would leave the older store's
    // value in the cache.
    ++stores_;
    if (info.mem_cycle == no_cycle)
        fail(inst, "store committed without draining its write to "
                   "the cache");
    if (it != last_store_.end()
        && info.mem_cycle < it->second.drain_cycle) {
        std::ostringstream os;
        os << "store drain order violated: this store drained at cycle "
           << info.mem_cycle << " but older store seq "
           << it->second.seq << " to the same address drained later, "
           << "at cycle " << it->second.drain_cycle;
        fail(inst, os.str());
    }
    LastStore st;
    st.seq = inst.seq;
    st.drain_cycle = info.mem_cycle;
    st.commit_cycle = commit_cycle;
    last_store_[inst.addr] = st;
}

} // namespace verify
} // namespace lbic
