/**
 * @file
 * The golden-model differential checker.
 *
 * Every IPC number this reproduction reports assumes the out-of-order
 * core serviced the architectural reference stream *correctly*: each
 * committed load got its data from the right place (the youngest older
 * in-flight store to the same address, or the cache once that store
 * had drained) and each store's cache write respected per-address
 * program order. A silent forwarding or drain-ordering bug would not
 * crash anything -- it would just quietly invalidate the Table 3/4
 * comparison between port organizations.
 *
 * GoldenChecker is a second, trivially-simple, in-order functional
 * memory model that shadows the timing core. The core notifies it of
 * every commit (which is in program order) together with how the
 * instruction was serviced (verify::CommitInfo); the checker replays
 * the same access against its own architectural state and throws
 * SimError (CheckFailure) on the first divergence. Because the checker
 * is execution-order-independent -- it sees only the committed
 * stream -- the same checks hold for all four port organizations.
 *
 * Checks performed at each commit:
 *  - commits are gapless and in program order;
 *  - (optional) the committed instruction matches an independently
 *    generated shadow copy of the workload stream field by field;
 *  - a forwarded load named exactly the youngest older same-address
 *    store as its data source;
 *  - a cache-serviced load read the cache only after the youngest
 *    older same-address store had both drained its write and left the
 *    window (otherwise the load was required to forward);
 *  - every store drained to the cache before committing, and
 *    same-address drains happened in program order.
 *
 * The model is timing-free: one hash map keyed by address. Overhead
 * with check=1 is a few percent, far inside the 2x budget.
 */

#ifndef LBIC_VERIFY_GOLDEN_MODEL_HH
#define LBIC_VERIFY_GOLDEN_MODEL_HH

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "common/types.hh"
#include "isa/dyn_inst.hh"
#include "workload/workload.hh"

namespace lbic
{
namespace verify
{

/** "No cycle recorded" sentinel for CommitInfo stamps. */
constexpr Cycle no_cycle = ~Cycle{0};

/**
 * How the core serviced one instruction, reported at its commit.
 * Non-memory instructions leave every field defaulted.
 */
struct CommitInfo
{
    /**
     * Cycle the operation's cache access was granted and accepted:
     * the load's read, or the store's drain (write grant). no_cycle
     * when the operation never touched the cache.
     */
    Cycle mem_cycle = no_cycle;

    /** Load only: serviced by zero-latency LSQ forwarding. */
    bool forwarded = false;

    /** Load only: sequence number of the forwarding source store. */
    InstSeq src_store = 0;
};

/** In-order functional shadow of the memory system. */
class GoldenChecker
{
  public:
    /**
     * @param shadow optional second copy of the workload stream (same
     *        name and seed as the one driving the core). When present
     *        every committed instruction is compared against it field
     *        by field, catching window-management bugs (skipped,
     *        duplicated or corrupted instructions) that the memory
     *        checks alone cannot see. Pass nullptr when the driving
     *        workload cannot be re-created (external workloads).
     */
    explicit GoldenChecker(std::unique_ptr<Workload> shadow = nullptr);

    /**
     * Verify one committed instruction against the golden model.
     *
     * @param inst the committing instruction (seq assigned).
     * @param info how the core serviced it.
     * @param commit_cycle the cycle it committed.
     * @throws SimError (CheckFailure) on the first divergence, with a
     *         message naming the sequence number, address and the
     *         expected-vs-actual service source.
     */
    void onCommit(const DynInst &inst, const CommitInfo &info,
                  Cycle commit_cycle);

    /**
     * Advance the shadow stream past @p n instructions without
     * checking them -- the fast-forward path, where the core retired
     * them architecturally and never commits them through the
     * pipeline. Call before the first onCommit().
     */
    void skipShadow(std::uint64_t n);

    /** @{ @name Progress counters (for tests and reporting) */
    std::uint64_t checkedInstructions() const { return checked_; }
    std::uint64_t checkedLoads() const { return loads_; }
    std::uint64_t checkedStores() const { return stores_; }
    std::uint64_t validatedForwards() const { return forwards_; }
    /** @} */

  private:
    /** Architectural state: the youngest committed store per address. */
    struct LastStore
    {
        InstSeq seq = 0;
        Cycle drain_cycle = no_cycle;  //!< cache write grant
        Cycle commit_cycle = no_cycle; //!< left the window
    };

    [[noreturn]] void fail(const DynInst &inst,
                           const std::string &what) const;

    /** Compare @p inst against the next shadow-stream instruction. */
    void checkShadowStream(const DynInst &inst);

    std::unordered_map<Addr, LastStore> last_store_;
    std::unique_ptr<Workload> shadow_;
    InstSeq next_seq_ = 0;
    bool shadow_ended_ = false;

    std::uint64_t checked_ = 0;
    std::uint64_t loads_ = 0;
    std::uint64_t stores_ = 0;
    std::uint64_t forwards_ = 0;
};

} // namespace verify
} // namespace lbic

#endif // LBIC_VERIFY_GOLDEN_MODEL_HH
