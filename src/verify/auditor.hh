/**
 * @file
 * The structural invariant auditor.
 *
 * The golden model (verify/golden_model.hh) validates the committed
 * stream; the auditor validates the machine *between* commits. Each
 * component registers named invariants over its own internal state --
 * RUU/LSQ occupancy conservation, LSQ sequence ordering, per-bank
 * store-queue depth bounds, stat-counter consistency such as
 * `combines <= grants` -- and the core evaluates the whole registry
 * every `audit_interval` cycles (the periodic-sampling validation
 * idea: frequent enough to localize a corruption to a short window,
 * infrequent enough to stay cheap).
 *
 * An invariant is a callable returning an empty string when the
 * invariant holds and a human-readable diagnosis when it does not.
 * The first failing invariant aborts the audit with SimError
 * (CheckFailure) naming the invariant, the cycle, and the diagnosis.
 *
 * Registration:
 * @code
 *   verify::InvariantAuditor auditor;
 *   core.registerInvariants(auditor);
 *   scheduler.registerInvariants(auditor);
 *   hierarchy.registerInvariants(auditor);
 *   core.setAuditor(&auditor, 1000);   // audit every 1000 cycles
 * @endcode
 */

#ifndef LBIC_VERIFY_AUDITOR_HH
#define LBIC_VERIFY_AUDITOR_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/types.hh"

namespace lbic
{
namespace verify
{

/** Named registry of structural invariants, audited periodically. */
class InvariantAuditor
{
  public:
    /**
     * One invariant: returns "" while the invariant holds, a
     * diagnosis otherwise. Must not mutate observable simulator
     * state (audited runs stay bit-identical to unaudited ones).
     */
    using CheckFn = std::function<std::string()>;

    /** Register an invariant under @p name (e.g. "core.occupancy"). */
    void
    add(std::string name, CheckFn fn)
    {
        checks_.push_back({std::move(name), std::move(fn)});
    }

    /**
     * Evaluate every registered invariant.
     *
     * @param now the current cycle, for the failure message.
     * @throws SimError (CheckFailure) on the first violated invariant.
     */
    void audit(Cycle now);

    /** Number of registered invariants. */
    std::size_t size() const { return checks_.size(); }

    /** Completed full audit passes (for tests and reporting). */
    std::uint64_t auditsRun() const { return audits_; }

    /** Registered invariant names, in registration order. */
    std::vector<std::string> names() const;

  private:
    struct Check
    {
        std::string name;
        CheckFn fn;
    };

    std::vector<Check> checks_;
    std::uint64_t audits_ = 0;
};

} // namespace verify
} // namespace lbic

#endif // LBIC_VERIFY_AUDITOR_HH
