#include "trace.hh"

#include <algorithm>
#include <cstdio>

#include "common/logging.hh"

namespace lbic
{
namespace trace
{

const char *
bankEventName(BankEventKind kind)
{
    switch (kind) {
      case BankEventKind::ConflictSameLine:  return "conflict_same_line";
      case BankEventKind::ConflictDiffLine:  return "conflict_diff_line";
      case BankEventKind::PortsExhausted:    return "ports_exhausted";
      case BankEventKind::Combine:           return "combine";
      case BankEventKind::StoreQueueFull:    return "store_queue_full";
      case BankEventKind::StoreDrain:        return "store_drain";
      case BankEventKind::StoreDirectWrite:  return "store_direct_write";
      case BankEventKind::StoreBroadcast:    return "store_broadcast";
      case BankEventKind::BeyondWindow:      return "beyond_window";
    }
    return "unknown";
}

namespace
{

const char *
noteName(InstRecord::Note note)
{
    switch (note) {
      case InstRecord::Note::Hit:       return "hit";
      case InstRecord::Note::Miss:      return "miss";
      case InstRecord::Note::Forwarded: return "forwarded";
      case InstRecord::Note::None:      break;
    }
    return "";
}

/** The stage stamps of @p rec that were actually reached, in order. */
struct StageStamp
{
    const char *name;    //!< long name (text / chrome)
    const char *abbrev;  //!< short name (konata lane labels)
    Cycle cycle;
};

std::size_t
collectStages(const InstRecord &rec, StageStamp out[6])
{
    std::size_t n = 0;
    if (rec.fetch != no_stamp)
        out[n++] = {"fetch", "F", rec.fetch};
    if (rec.dispatch != no_stamp)
        out[n++] = {"dispatch", "Ds", rec.dispatch};
    if (rec.issue != no_stamp)
        out[n++] = {"issue", "Is", rec.issue};
    if (rec.mem != no_stamp)
        out[n++] = {"mem", "M", rec.mem};
    if (rec.writeback != no_stamp)
        out[n++] = {"writeback", "Wb", rec.writeback};
    if (rec.commit != no_stamp)
        out[n++] = {"commit", "Cm", rec.commit};
    return n;
}

} // anonymous namespace

void
TextTraceSink::instRetired(const InstRecord &rec)
{
    os_ << "inst " << rec.seq << ' ' << opClassName(rec.op);
    if (rec.is_mem)
        os_ << " 0x" << std::hex << rec.addr << std::dec;
    StageStamp stages[6];
    const std::size_t n = collectStages(rec, stages);
    for (std::size_t i = 0; i < n; ++i)
        os_ << ' ' << stages[i].abbrev << '=' << stages[i].cycle;
    if (rec.note != InstRecord::Note::None)
        os_ << ' ' << noteName(rec.note);
    os_ << '\n';
}

void
TextTraceSink::bankEvent(const BankEvent &ev)
{
    os_ << "bank " << ev.cycle << " b" << ev.bank << ' '
        << bankEventName(ev.kind);
    if (ev.line)
        os_ << " line 0x" << std::hex << ev.line << std::dec;
    os_ << '\n';
}

ChromeTraceSink::ChromeTraceSink(std::ostream &os)
    : os_(os)
{
    os_ << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
}

void
ChromeTraceSink::beginEvent()
{
    if (!first_)
        os_ << ",";
    first_ = false;
    os_ << "\n";
}

void
ChromeTraceSink::instRetired(const InstRecord &rec)
{
    // One duration ("ph":"X") event per pipeline stage, on a track per
    // RUU slot: slot occupancy intervals are disjoint by construction,
    // so every track renders without overlap in Perfetto.
    StageStamp stages[6];
    const std::size_t n = collectStages(rec, stages);
    for (std::size_t i = 0; i < n; ++i) {
        // A stage spans until the next reached stage begins; the final
        // stage (commit) gets one cycle.
        const Cycle start = stages[i].cycle;
        const Cycle next = i + 1 < n ? stages[i + 1].cycle : start + 1;
        const Cycle dur = next > start ? next - start : 1;
        beginEvent();
        os_ << "{\"name\":\"" << opClassName(rec.op) << ' '
            << stages[i].name << "\",\"cat\":\"inst\",\"ph\":\"X\""
            << ",\"ts\":" << start << ",\"dur\":" << dur
            << ",\"pid\":1,\"tid\":" << rec.slot
            << ",\"args\":{\"seq\":" << rec.seq;
        if (rec.is_mem)
            os_ << ",\"addr\":" << rec.addr;
        if (rec.note != InstRecord::Note::None)
            os_ << ",\"note\":\"" << noteName(rec.note) << "\"";
        os_ << "}}";
    }
}

void
ChromeTraceSink::bankEvent(const BankEvent &ev)
{
    // Instant events on a separate process so bank activity groups
    // apart from the pipeline tracks.
    beginEvent();
    os_ << "{\"name\":\"" << bankEventName(ev.kind)
        << "\",\"cat\":\"bank\",\"ph\":\"i\",\"s\":\"t\""
        << ",\"ts\":" << ev.cycle << ",\"pid\":2,\"tid\":" << ev.bank
        << ",\"args\":{\"line\":" << ev.line << "}}";
}

void
ChromeTraceSink::finish()
{
    if (finished_)
        return;
    finished_ = true;
    os_ << "\n]}\n";
    os_.flush();
}

void
KonataTraceSink::instRetired(const InstRecord &rec)
{
    records_.push_back(rec);
}

void
KonataTraceSink::finish()
{
    if (finished_)
        return;
    finished_ = true;

    // Build the per-cycle command stream. Kanata interleaves all
    // instructions against one cycle cursor, so every command is
    // stamped with its cycle, sorted (stably, preserving per-
    // instruction order within a cycle), and emitted behind C=/C
    // cursor advances.
    struct Cmd
    {
        Cycle cycle;
        std::uint64_t order;  //!< tie-break: emission order
        std::string text;
    };
    std::vector<Cmd> cmds;
    std::uint64_t order = 0;
    for (std::size_t i = 0; i < records_.size(); ++i) {
        const InstRecord &rec = records_[i];
        StageStamp stages[6];
        const std::size_t n = collectStages(rec, stages);
        if (n == 0)
            continue;
        const std::string id = std::to_string(i);
        std::string label(opClassName(rec.op));
        if (rec.is_mem) {
            char buf[32];
            std::snprintf(buf, sizeof(buf), " @%llx",
                          static_cast<unsigned long long>(rec.addr));
            label += buf;
        }
        cmds.push_back({stages[0].cycle, order++,
                        "I\t" + id + "\t" + std::to_string(rec.seq)
                            + "\t0"});
        cmds.push_back({stages[0].cycle, order++,
                        "L\t" + id + "\t0\t" + std::to_string(rec.seq)
                            + ": " + label});
        for (std::size_t s = 0; s < n; ++s) {
            cmds.push_back({stages[s].cycle, order++,
                            "S\t" + id + "\t0\t" + stages[s].abbrev});
        }
        // Retire one cycle after commit begins (the stage needs a
        // nonzero extent to render).
        cmds.push_back({stages[n - 1].cycle + 1, order++,
                        "R\t" + id + "\t" + std::to_string(rec.seq)
                            + "\t0"});
    }
    std::stable_sort(cmds.begin(), cmds.end(),
                     [](const Cmd &a, const Cmd &b) {
                         return a.cycle != b.cycle ? a.cycle < b.cycle
                                                   : a.order < b.order;
                     });

    os_ << "Kanata\t0004\n";
    if (cmds.empty()) {
        os_.flush();
        return;
    }
    Cycle cursor = cmds.front().cycle;
    os_ << "C=\t" << cursor << '\n';
    for (const Cmd &cmd : cmds) {
        if (cmd.cycle != cursor) {
            os_ << "C\t" << (cmd.cycle - cursor) << '\n';
            cursor = cmd.cycle;
        }
        os_ << cmd.text << '\n';
    }
    os_.flush();
}

std::unique_ptr<TraceSink>
makeTraceSink(const std::string &format, std::ostream &os)
{
    if (format == "text")
        return std::make_unique<TextTraceSink>(os);
    if (format == "chrome")
        return std::make_unique<ChromeTraceSink>(os);
    if (format == "konata")
        return std::make_unique<KonataTraceSink>(os);
    lbic_fatal("trace_format must be 'text', 'chrome' or 'konata', "
               "got '", format, "'");
}

} // namespace trace
} // namespace lbic
