/**
 * @file
 * A tiny key=value configuration store with typed accessors.
 *
 * Examples and benchmarks parse `key=value` command-line arguments into
 * a Config, then the simulator builder reads typed values out of it.
 * Unknown keys are detected at the end of construction so typos fail
 * loudly (fatal, not panic: a bad flag is a user error).
 */

#ifndef LBIC_COMMON_CONFIG_HH
#define LBIC_COMMON_CONFIG_HH

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace lbic
{

/** String-keyed configuration with typed, defaulted accessors. */
class Config
{
  public:
    Config() = default;

    /**
     * Parse `key=value` tokens (e.g.\ from argv). Tokens without '='
     * are rejected with fatal().
     */
    static Config fromArgs(int argc, const char *const *argv);

    /** Set (or overwrite) a key. */
    void set(const std::string &key, const std::string &value);

    /** True if @p key was provided. */
    bool has(const std::string &key) const;

    /**
     * Typed accessors; each records the key as "recognized" and
     * returns @p def when absent. Malformed values are fatal.
     */
    std::string getString(const std::string &key,
                          const std::string &def) const;
    std::uint64_t getU64(const std::string &key, std::uint64_t def) const;
    double getDouble(const std::string &key, double def) const;
    bool getBool(const std::string &key, bool def) const;

    /** Keys that were set but never read by any accessor. */
    std::vector<std::string> unrecognizedKeys() const;

    /**
     * fatal() if any set key was never read. The message carries a
     * did-you-mean suggestion per unknown key, chosen by edit distance
     * over the keys the accessors were asked for.
     */
    void rejectUnrecognized() const;

    /**
     * The recognized key closest to @p key by edit distance, or ""
     * when nothing is plausibly a typo for it.
     */
    std::string closestKnownKey(const std::string &key) const;

  private:
    std::map<std::string, std::string> values_;
    mutable std::set<std::string> touched_;
};

} // namespace lbic

#endif // LBIC_COMMON_CONFIG_HH
