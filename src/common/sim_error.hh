/**
 * @file
 * The recoverable-failure exception taxonomy.
 *
 * lbic_fatal() and lbic_panic() terminate the process, which is the
 * right behaviour at a command-line entry point but wrong inside a
 * SweepRunner worker: one bad configuration or one wedged simulation
 * must not take down the 199 healthy jobs around it. Failure paths
 * that a supervising layer can reasonably contain throw SimError
 * instead; the CLI drivers catch it at main() and exit(1), preserving
 * the old user-visible behaviour, while SweepRunner records it per job
 * and lets the rest of the sweep complete.
 *
 * The taxonomy also tells the supervisor how to react:
 *
 *  - Config: the request itself is impossible (unknown workload, bad
 *    port spec). Deterministic; never retry.
 *  - Deadlock: the simulation stopped making forward progress (the
 *    watchdog fired) or exhausted its cycle/wall-time budget.
 *    Deterministic for a fixed configuration; never retry.
 *  - CheckFailure: the golden-model checker or the invariant auditor
 *    found the simulator in an architecturally inconsistent state.
 *    Always a simulator bug; never retry, always report.
 *
 * Anything *not* a SimError (bad_alloc, filesystem errors...) is
 * environmental and treated as transient by the sweep retry policy.
 */

#ifndef LBIC_COMMON_SIM_ERROR_HH
#define LBIC_COMMON_SIM_ERROR_HH

#include <stdexcept>
#include <string>

namespace lbic
{

/** What went wrong, at the granularity a supervisor cares about. */
enum class SimErrorKind
{
    Config,       //!< impossible request: bad spec, unknown name
    Deadlock,     //!< no forward progress, or budget exhausted
    CheckFailure, //!< golden model / invariant auditor mismatch
};

/** Stable lowercase name of @p kind ("config", "deadlock", "check"). */
inline const char *
simErrorKindName(SimErrorKind kind)
{
    switch (kind) {
      case SimErrorKind::Config: return "config";
      case SimErrorKind::Deadlock: return "deadlock";
      case SimErrorKind::CheckFailure: return "check";
    }
    return "unknown";
}

/**
 * A recoverable simulation failure.
 *
 * Derives from std::runtime_error so legacy catch sites (and tests
 * written against the fatal()-throws-runtime_error test mode) keep
 * working unchanged; what() is prefixed with the kind name, e.g.
 * "[deadlock] no commit for 100000 cycles ...".
 */
class SimError : public std::runtime_error
{
  public:
    SimError(SimErrorKind kind, const std::string &message)
        : std::runtime_error(std::string("[") + simErrorKindName(kind)
                             + "] " + message),
          kind_(kind)
    {}

    SimErrorKind kind() const { return kind_; }

    /** True for kinds that are deterministic and must not be retried. */
    bool
    permanent() const
    {
        return true;  // every kind in the taxonomy is deterministic
    }

  private:
    SimErrorKind kind_;
};

} // namespace lbic

#endif // LBIC_COMMON_SIM_ERROR_HH
