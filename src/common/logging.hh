/**
 * @file
 * Error and status reporting helpers in the gem5 style.
 *
 * panic()  -- an internal simulator invariant was violated; aborts.
 * fatal()  -- the user asked for something impossible; exits cleanly.
 * warn()   -- something is suspicious but simulation continues.
 * inform() -- plain status output.
 *
 * All messages funnel through one process-wide sink guarded by a
 * mutex, so lines from concurrent SweepRunner workers never interleave
 * mid-line. Verbosity is controlled by setLogLevel() or the
 * LBIC_LOG_LEVEL environment variable ("quiet", "warn" or "info"):
 * Quiet drops warn() and inform(), Warn drops only inform(). panic()
 * and fatal() always print.
 */

#ifndef LBIC_COMMON_LOGGING_HH
#define LBIC_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

namespace lbic
{

/** How much warn()/inform() output reaches the log sink. */
enum class LogLevel
{
    Quiet = 0,  //!< suppress warn() and inform()
    Warn = 1,   //!< warn() only
    Info = 2,   //!< everything (the default)
};

/**
 * Set the process-wide log level, overriding LBIC_LOG_LEVEL. Safe to
 * call from any thread.
 */
void setLogLevel(LogLevel level);

/**
 * The current log level: the last setLogLevel() value, else
 * LBIC_LOG_LEVEL from the environment, else Info.
 */
LogLevel logLevel();

namespace detail
{

/** Format a message with source location and severity prefix. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/**
 * Make panic()/fatal() throw std::logic_error / std::runtime_error
 * instead of terminating. Intended for unit tests only.
 */
void setThrowOnError(bool enable);

/**
 * Divert warn()/inform() lines (severity prefix included, newline
 * excluded) into @p capture instead of the real streams; nullptr
 * restores normal output. Intended for unit tests only.
 */
void setLogCapture(std::vector<std::string> *capture);

/** Stream-concatenate a parameter pack into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

/** Abort with a message: simulator bug, should never happen. */
#define lbic_panic(...) \
    ::lbic::detail::panicImpl(__FILE__, __LINE__, \
                              ::lbic::detail::concat(__VA_ARGS__))

/** Exit with a message: user error (bad configuration, bad input). */
#define lbic_fatal(...) \
    ::lbic::detail::fatalImpl(__FILE__, __LINE__, \
                              ::lbic::detail::concat(__VA_ARGS__))

/** Warn but continue. */
#define lbic_warn(...) \
    ::lbic::detail::warnImpl(::lbic::detail::concat(__VA_ARGS__))

/** Informational status message. */
#define lbic_inform(...) \
    ::lbic::detail::informImpl(::lbic::detail::concat(__VA_ARGS__))

/** Panic unless a simulator invariant holds. */
#define lbic_assert(cond, ...) \
    do { \
        if (!(cond)) { \
            ::lbic::detail::panicImpl(__FILE__, __LINE__, \
                ::lbic::detail::concat("assertion '" #cond "' failed: ", \
                                       ##__VA_ARGS__)); \
        } \
    } while (0)

} // namespace lbic

#endif // LBIC_COMMON_LOGGING_HH
