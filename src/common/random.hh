/**
 * @file
 * Deterministic pseudo-random number generator.
 *
 * Every stochastic choice in the simulator (synthetic address streams,
 * random replacement, workload data initialization) draws from a
 * seeded xorshift128+ generator so identical configurations produce
 * identical results. std::mt19937 is avoided only because its state
 * is bulky to copy into every workload; this generator is small, fast,
 * and of ample quality for workload synthesis.
 */

#ifndef LBIC_COMMON_RANDOM_HH
#define LBIC_COMMON_RANDOM_HH

#include <cstdint>

#include "logging.hh"

namespace lbic
{

/** Small deterministic xorshift128+ PRNG. */
class Random
{
  public:
    /** Construct with a seed; any seed (including 0) is legal. */
    explicit Random(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        // SplitMix64 seeding avoids the all-zero state and decorrelates
        // nearby seeds.
        std::uint64_t z = seed;
        for (auto *s : {&s0_, &s1_}) {
            z += 0x9e3779b97f4a7c15ull;
            std::uint64_t x = z;
            x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
            x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
            *s = x ^ (x >> 31);
        }
        if (s0_ == 0 && s1_ == 0)
            s1_ = 1;
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t x = s0_;
        const std::uint64_t y = s1_;
        s0_ = y;
        x ^= x << 23;
        s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
        return s1_ + y;
    }

    /** Uniform integer in [0, bound). @p bound must be non-zero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        lbic_assert(bound != 0, "Random::below(0)");
        // Multiply-shift rejection-free mapping (slight modulo bias is
        // irrelevant for workload synthesis).
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    between(std::uint64_t lo, std::uint64_t hi)
    {
        lbic_assert(lo <= hi, "Random::between: lo > hi");
        return lo + below(hi - lo + 1);
    }

    /** Uniform real in [0, 1). */
    double
    real()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw: true with probability @p p. */
    bool
    chance(double p)
    {
        return real() < p;
    }

    /** The raw generator state, for checkpoint serialization. */
    struct State
    {
        std::uint64_t s0 = 0;
        std::uint64_t s1 = 0;
    };

    /** Snapshot the generator state. */
    State state() const { return {s0_, s1_}; }

    /**
     * Restore a state captured by state(). An all-zero state would
     * wedge xorshift; it is coerced to the same non-degenerate state
     * the seeding path uses.
     */
    void
    setState(const State &s)
    {
        s0_ = s.s0;
        s1_ = s.s1;
        if (s0_ == 0 && s1_ == 0)
            s1_ = 1;
    }

  private:
    std::uint64_t s0_;
    std::uint64_t s1_;
};

} // namespace lbic

#endif // LBIC_COMMON_RANDOM_HH
