#include "config.hh"

#include <algorithm>
#include <cstdlib>

#include "logging.hh"

namespace lbic
{

Config
Config::fromArgs(int argc, const char *const *argv)
{
    Config cfg;
    for (int i = 1; i < argc; ++i) {
        const std::string tok = argv[i];
        const auto eq = tok.find('=');
        if (eq == std::string::npos || eq == 0) {
            lbic_fatal("expected key=value argument, got '", tok, "'");
        }
        cfg.set(tok.substr(0, eq), tok.substr(eq + 1));
    }
    return cfg;
}

void
Config::set(const std::string &key, const std::string &value)
{
    values_[key] = value;
}

bool
Config::has(const std::string &key) const
{
    return values_.count(key) != 0;
}

std::string
Config::getString(const std::string &key, const std::string &def) const
{
    touched_.insert(key);
    auto it = values_.find(key);
    return it == values_.end() ? def : it->second;
}

std::uint64_t
Config::getU64(const std::string &key, std::uint64_t def) const
{
    touched_.insert(key);
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    char *end = nullptr;
    const std::uint64_t v = std::strtoull(it->second.c_str(), &end, 0);
    if (end == it->second.c_str() || *end != '\0')
        lbic_fatal("config key '", key, "': '", it->second,
                   "' is not an integer");
    return v;
}

double
Config::getDouble(const std::string &key, double def) const
{
    touched_.insert(key);
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    char *end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0')
        lbic_fatal("config key '", key, "': '", it->second,
                   "' is not a number");
    return v;
}

bool
Config::getBool(const std::string &key, bool def) const
{
    touched_.insert(key);
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    const std::string &v = it->second;
    if (v == "1" || v == "true" || v == "yes" || v == "on")
        return true;
    if (v == "0" || v == "false" || v == "no" || v == "off")
        return false;
    lbic_fatal("config key '", key, "': '", v, "' is not a boolean");
}

std::vector<std::string>
Config::unrecognizedKeys() const
{
    std::vector<std::string> out;
    for (const auto &[k, v] : values_) {
        if (!touched_.count(k))
            out.push_back(k);
    }
    return out;
}

namespace
{

/** Levenshtein distance, early-exited; keys are short. */
std::size_t
editDistance(const std::string &a, const std::string &b)
{
    std::vector<std::size_t> row(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j)
        row[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
        std::size_t diag = row[0];
        row[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            const std::size_t sub =
                diag + (a[i - 1] == b[j - 1] ? 0 : 1);
            diag = row[j];
            row[j] = std::min({row[j] + 1, row[j - 1] + 1, sub});
        }
    }
    return row[b.size()];
}

} // anonymous namespace

std::string
Config::closestKnownKey(const std::string &key) const
{
    // Every key an accessor was ever asked for is a key this consumer
    // understands; that set is exactly what a typo should be compared
    // against. Accept a suggestion only when it is close enough to
    // plausibly be a typo (distance <= 2, or <= 1 for short keys).
    std::string best;
    std::size_t best_dist = key.size() <= 4 ? 2 : 3;
    for (const std::string &known : touched_) {
        const std::size_t d = editDistance(key, known);
        if (d < best_dist) {
            best_dist = d;
            best = known;
        }
    }
    return best;
}

void
Config::rejectUnrecognized() const
{
    const auto unknown = unrecognizedKeys();
    if (unknown.empty())
        return;
    std::string joined;
    for (const auto &k : unknown) {
        joined += (joined.empty() ? "" : ", ") + k;
        const std::string suggestion = closestKnownKey(k);
        if (!suggestion.empty())
            joined += " (did you mean '" + suggestion + "'?)";
    }
    lbic_fatal("unrecognized configuration key(s): ", joined);
}

} // namespace lbic
