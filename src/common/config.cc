#include "config.hh"

#include <cstdlib>

#include "logging.hh"

namespace lbic
{

Config
Config::fromArgs(int argc, const char *const *argv)
{
    Config cfg;
    for (int i = 1; i < argc; ++i) {
        const std::string tok = argv[i];
        const auto eq = tok.find('=');
        if (eq == std::string::npos || eq == 0) {
            lbic_fatal("expected key=value argument, got '", tok, "'");
        }
        cfg.set(tok.substr(0, eq), tok.substr(eq + 1));
    }
    return cfg;
}

void
Config::set(const std::string &key, const std::string &value)
{
    values_[key] = value;
}

bool
Config::has(const std::string &key) const
{
    return values_.count(key) != 0;
}

std::string
Config::getString(const std::string &key, const std::string &def) const
{
    touched_.insert(key);
    auto it = values_.find(key);
    return it == values_.end() ? def : it->second;
}

std::uint64_t
Config::getU64(const std::string &key, std::uint64_t def) const
{
    touched_.insert(key);
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    char *end = nullptr;
    const std::uint64_t v = std::strtoull(it->second.c_str(), &end, 0);
    if (end == it->second.c_str() || *end != '\0')
        lbic_fatal("config key '", key, "': '", it->second,
                   "' is not an integer");
    return v;
}

double
Config::getDouble(const std::string &key, double def) const
{
    touched_.insert(key);
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    char *end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0')
        lbic_fatal("config key '", key, "': '", it->second,
                   "' is not a number");
    return v;
}

bool
Config::getBool(const std::string &key, bool def) const
{
    touched_.insert(key);
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    const std::string &v = it->second;
    if (v == "1" || v == "true" || v == "yes" || v == "on")
        return true;
    if (v == "0" || v == "false" || v == "no" || v == "off")
        return false;
    lbic_fatal("config key '", key, "': '", v, "' is not a boolean");
}

std::vector<std::string>
Config::unrecognizedKeys() const
{
    std::vector<std::string> out;
    for (const auto &[k, v] : values_) {
        if (!touched_.count(k))
            out.push_back(k);
    }
    return out;
}

void
Config::rejectUnrecognized() const
{
    const auto unknown = unrecognizedKeys();
    if (!unknown.empty()) {
        std::string joined;
        for (const auto &k : unknown)
            joined += (joined.empty() ? "" : ", ") + k;
        lbic_fatal("unrecognized configuration key(s): ", joined);
    }
}

} // namespace lbic
