/**
 * @file
 * Bit-manipulation helpers for address decomposition.
 *
 * The multi-bank cache models decompose an effective address into
 * tag / line-selector / bank-selector / line-offset fields (paper
 * Figure 2c); these helpers keep that arithmetic readable and safe.
 */

#ifndef LBIC_COMMON_BITOPS_HH
#define LBIC_COMMON_BITOPS_HH

#include <bit>
#include <cstdint>

#include "logging.hh"
#include "types.hh"

namespace lbic
{

/** True iff @p v is a power of two (and non-zero). */
constexpr bool
isPowerOf2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/**
 * Integer base-2 logarithm of a power of two.
 *
 * @param v value; must be a non-zero power of two.
 * @return floor(log2(v)).
 */
inline unsigned
floorLog2(std::uint64_t v)
{
    lbic_assert(v != 0, "floorLog2(0) undefined");
    return 63u - static_cast<unsigned>(std::countl_zero(v));
}

/**
 * Extract @p nbits bits of @p v starting at bit position @p first
 * (LSB = position 0).
 */
constexpr std::uint64_t
bits(std::uint64_t v, unsigned first, unsigned nbits)
{
    if (nbits == 0)
        return 0;
    if (nbits >= 64)
        return v >> first;
    return (v >> first) & ((std::uint64_t{1} << nbits) - 1);
}

/** Mask covering the low @p nbits bits. */
constexpr std::uint64_t
mask(unsigned nbits)
{
    return nbits >= 64 ? ~std::uint64_t{0}
                       : (std::uint64_t{1} << nbits) - 1;
}

/** Align @p a down to a multiple of power-of-two @p align. */
constexpr Addr
alignDown(Addr a, std::uint64_t align)
{
    return a & ~(align - 1);
}

/** Align @p a up to a multiple of power-of-two @p align. */
constexpr Addr
alignUp(Addr a, std::uint64_t align)
{
    return (a + align - 1) & ~(align - 1);
}

} // namespace lbic

#endif // LBIC_COMMON_BITOPS_HH
