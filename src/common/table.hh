/**
 * @file
 * Plain-text table formatter used by the benchmark harnesses to print
 * paper-style tables (Table 2, Table 3, Table 4, Figure 3 rows).
 */

#ifndef LBIC_COMMON_TABLE_HH
#define LBIC_COMMON_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace lbic
{

/** A simple left/right-aligned text table. */
class TextTable
{
  public:
    /** Set the column headers; defines the column count. */
    void setHeader(std::vector<std::string> header);

    /** Append one row; must match the header's column count. */
    void addRow(std::vector<std::string> row);

    /** Append a horizontal separator row. */
    void addSeparator();

    /** Render with column widths fitted to content. */
    void print(std::ostream &os) const;

    /** Helper: format a double with @p precision fraction digits. */
    static std::string fmt(double v, int precision = 3);

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace lbic

#endif // LBIC_COMMON_TABLE_HH
