#include "table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "logging.hh"

namespace lbic
{

namespace
{

/** Sentinel row meaning "draw a separator here". */
const std::string separator_tag = "\x01--";

} // anonymous namespace

void
TextTable::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
TextTable::addRow(std::vector<std::string> row)
{
    lbic_assert(header_.empty() || row.size() == header_.size(),
                "table row has ", row.size(), " cells, expected ",
                header_.size());
    rows_.push_back(std::move(row));
}

void
TextTable::addSeparator()
{
    rows_.push_back({separator_tag});
}

void
TextTable::print(std::ostream &os) const
{
    const std::size_t ncols = header_.size();
    std::vector<std::size_t> width(ncols, 0);
    for (std::size_t c = 0; c < ncols; ++c)
        width[c] = header_[c].size();
    for (const auto &row : rows_) {
        if (row.size() == 1 && row[0] == separator_tag)
            continue;
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());
    }

    auto print_sep = [&]() {
        for (std::size_t c = 0; c < ncols; ++c) {
            os << '+' << std::string(width[c] + 2, '-');
        }
        os << "+\n";
    };
    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < ncols; ++c) {
            const std::string &cell = c < row.size() ? row[c] : "";
            // Left-align the first column (names), right-align numbers.
            os << "| ";
            if (c == 0)
                os << std::left;
            else
                os << std::right;
            os << std::setw(static_cast<int>(width[c])) << cell << ' ';
        }
        os << "|\n";
    };

    print_sep();
    print_row(header_);
    print_sep();
    for (const auto &row : rows_) {
        if (row.size() == 1 && row[0] == separator_tag)
            print_sep();
        else
            print_row(row);
    }
    print_sep();
}

std::string
TextTable::fmt(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

} // namespace lbic
