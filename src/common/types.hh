/**
 * @file
 * Fundamental scalar types used throughout the simulator.
 *
 * These aliases follow the SimpleScalar / gem5 convention of giving
 * architectural quantities explicit names so that interfaces document
 * their units (an Addr is a byte address, a Cycle is a count of core
 * clock cycles, and so on).
 */

#ifndef LBIC_COMMON_TYPES_HH
#define LBIC_COMMON_TYPES_HH

#include <cstdint>

namespace lbic
{

/** A byte address in the simulated memory space. */
using Addr = std::uint64_t;

/** A count of core clock cycles (also used as an absolute timestamp). */
using Cycle = std::uint64_t;

/** A dynamic instruction sequence number (program order). */
using InstSeq = std::uint64_t;

/** A virtual (architectural) register identifier. */
using RegId = std::uint32_t;

/** Sentinel meaning "no register" (e.g.\ a store has no destination). */
constexpr RegId invalid_reg = ~RegId{0};

/** Sentinel meaning "no address". */
constexpr Addr invalid_addr = ~Addr{0};

} // namespace lbic

#endif // LBIC_COMMON_TYPES_HH
