#include "statistics.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>

namespace lbic
{
namespace stats
{

StatBase::StatBase(StatGroup *parent, std::string name, std::string desc)
    : name_(std::move(name)), desc_(std::move(desc))
{
    lbic_assert(parent != nullptr, "statistic '", name_,
                "' needs a parent group");
    parent->addStat(this);
}

void
Scalar::print(std::ostream &os, const std::string &prefix) const
{
    os << std::left << std::setw(40) << (prefix + name())
       << ' ' << value() << " # " << desc() << '\n';
}

namespace
{

/** Emit a leading comma unless this is the first member. */
void
jsonSep(std::ostream &os, bool &first)
{
    if (!first)
        os << ',';
    first = false;
}

/** JSON numbers may not be NaN/inf; clamp those to null. */
void
jsonNumber(std::ostream &os, double v)
{
    if (std::isfinite(v))
        os << v;
    else
        os << "null";
}

} // anonymous namespace

void
Scalar::printJson(std::ostream &os, bool &first) const
{
    jsonSep(os, first);
    os << '"' << name() << "\":";
    jsonNumber(os, value());
}

void
Distribution::printJson(std::ostream &os, bool &first) const
{
    jsonSep(os, first);
    os << '"' << name() << "\":{\"samples\":" << samples_
       << ",\"mean\":";
    jsonNumber(os, mean());
    os << ",\"buckets\":{";
    bool bucket_first = true;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        if (buckets_[i] == 0)
            continue;
        if (!bucket_first)
            os << ',';
        bucket_first = false;
        os << '"' << (min_ + i * bucket_size_) << "\":" << buckets_[i];
    }
    os << '}';
    if (underflow_)
        os << ",\"underflow\":" << underflow_;
    if (overflow_)
        os << ",\"overflow\":" << overflow_;
    os << '}';
}

void
Derived::printJson(std::ostream &os, bool &first) const
{
    jsonSep(os, first);
    os << '"' << name() << "\":";
    jsonNumber(os, value());
}

void
Scalar::printJsonFlat(std::ostream &os, const std::string &prefix,
                      bool &first) const
{
    jsonSep(os, first);
    os << '"' << prefix << name() << "\":";
    jsonNumber(os, value());
}

void
Distribution::printJsonFlat(std::ostream &os, const std::string &prefix,
                            bool &first) const
{
    // Mirrors print(): .samples, .mean, .underflow, one key per
    // populated bucket (named by its low edge), .overflow.
    const std::string full = prefix + name();
    jsonSep(os, first);
    os << '"' << full << ".samples\":" << samples_;
    os << ",\"" << full << ".mean\":";
    jsonNumber(os, mean());
    if (underflow_)
        os << ",\"" << full << ".underflow\":" << underflow_;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        if (buckets_[i] == 0)
            continue;
        os << ",\"" << full << '.' << (min_ + i * bucket_size_)
           << "\":" << buckets_[i];
    }
    if (overflow_)
        os << ",\"" << full << ".overflow\":" << overflow_;
}

void
Derived::printJsonFlat(std::ostream &os, const std::string &prefix,
                       bool &first) const
{
    jsonSep(os, first);
    os << '"' << prefix << name() << "\":";
    jsonNumber(os, value());
}

Distribution::Distribution(StatGroup *parent, std::string name,
                           std::string desc, std::uint64_t min,
                           std::uint64_t max, std::uint64_t bucket_size)
    : StatBase(parent, std::move(name), std::move(desc)),
      min_(min), max_(max), bucket_size_(bucket_size)
{
    lbic_assert(bucket_size_ > 0, "bucket size must be positive");
    lbic_assert(max_ >= min_, "distribution max < min");
    buckets_.resize((max_ - min_) / bucket_size_ + 1, 0);
}

std::uint64_t
Distribution::bucketCount(std::uint64_t v) const
{
    if (v < min_)
        return underflow_;
    if (v > max_)
        return overflow_;
    return buckets_[(v - min_) / bucket_size_];
}

void
Distribution::print(std::ostream &os, const std::string &prefix) const
{
    const std::string full = prefix + name();
    os << std::left << std::setw(40) << (full + ".samples")
       << ' ' << samples_ << " # " << desc() << '\n';
    os << std::left << std::setw(40) << (full + ".mean")
       << ' ' << mean() << " # mean of " << name() << '\n';
    if (underflow_) {
        os << std::left << std::setw(40) << (full + ".underflow")
           << ' ' << underflow_ << " # samples below " << min_ << '\n';
    }
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        if (buckets_[i] == 0)
            continue;
        const std::uint64_t lo = min_ + i * bucket_size_;
        os << std::left << std::setw(40)
           << (full + "." + std::to_string(lo))
           << ' ' << buckets_[i] << " # bucket [" << lo << ", "
           << (lo + bucket_size_ - 1) << "]\n";
    }
    if (overflow_) {
        os << std::left << std::setw(40) << (full + ".overflow")
           << ' ' << overflow_ << " # samples above " << max_ << '\n';
    }
}

void
Distribution::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    underflow_ = overflow_ = samples_ = 0;
    sum_ = 0.0;
    min_sample_ = std::numeric_limits<std::uint64_t>::max();
    max_sample_ = 0;
}

Derived::Derived(StatGroup *parent, std::string name, std::string desc,
                 std::function<double()> fn)
    : StatBase(parent, std::move(name), std::move(desc)),
      fn_(std::move(fn))
{
    lbic_assert(static_cast<bool>(fn_), "Derived stat needs a function");
}

void
Derived::print(std::ostream &os, const std::string &prefix) const
{
    os << std::left << std::setw(40) << (prefix + name())
       << ' ' << value() << " # " << desc() << '\n';
}

StatGroup::StatGroup(StatGroup *parent, std::string name)
    : parent_(parent), name_(std::move(name))
{
    if (parent_)
        parent_->addChild(this);
}

StatGroup::~StatGroup()
{
    if (parent_)
        parent_->removeChild(this);
}

void
StatGroup::addStat(StatBase *stat)
{
    lbic_assert(find(stat->name()) == nullptr,
                "duplicate statistic '", stat->name(), "' in group '",
                name_, "'");
    stats_.push_back(stat);
}

void
StatGroup::addChild(StatGroup *child)
{
    children_.push_back(child);
}

void
StatGroup::removeChild(StatGroup *child)
{
    std::erase(children_, child);
}

std::vector<const StatBase *>
StatGroup::sortedStats() const
{
    std::vector<const StatBase *> sorted(stats_.begin(), stats_.end());
    std::sort(sorted.begin(), sorted.end(),
              [](const StatBase *a, const StatBase *b) {
                  return a->name() < b->name();
              });
    return sorted;
}

std::vector<const StatGroup *>
StatGroup::sortedChildren() const
{
    std::vector<const StatGroup *> sorted(children_.begin(),
                                          children_.end());
    // stable: same-named children keep their registration order.
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const StatGroup *a, const StatGroup *b) {
                         return a->name() < b->name();
                     });
    return sorted;
}

void
StatGroup::print(std::ostream &os, const std::string &prefix) const
{
    const std::string full =
        name_.empty() ? prefix : prefix + name_ + ".";
    for (const auto *s : sortedStats())
        s->print(os, full);
    for (const auto *c : sortedChildren())
        c->print(os, full);
}

void
StatGroup::reset()
{
    for (auto *s : stats_)
        s->reset();
    for (auto *c : children_)
        c->reset();
}

void
StatGroup::printJson(std::ostream &os) const
{
    os << '{';
    bool first = true;
    for (const auto *s : sortedStats())
        s->printJson(os, first);
    for (const auto *c : sortedChildren()) {
        if (!first)
            os << ',';
        first = false;
        os << '"' << c->name() << "\":";
        c->printJson(os);
    }
    os << '}';
}

void
StatGroup::printJsonFlatInner(std::ostream &os,
                              const std::string &prefix,
                              bool &first) const
{
    const std::string full =
        name_.empty() ? prefix : prefix + name_ + ".";
    for (const auto *s : sortedStats())
        s->printJsonFlat(os, full, first);
    for (const auto *c : sortedChildren())
        c->printJsonFlatInner(os, full, first);
}

void
StatGroup::printJsonFlat(std::ostream &os) const
{
    os << '{';
    bool first = true;
    printJsonFlatInner(os, "", first);
    os << '}';
}

const StatBase *
StatGroup::find(const std::string &name) const
{
    const auto dot = name.find('.');
    if (dot == std::string::npos) {
        for (const auto *s : stats_) {
            if (s->name() == name)
                return s;
        }
        return nullptr;
    }
    const StatGroup *child = findGroup(name.substr(0, dot));
    return child ? child->find(name.substr(dot + 1)) : nullptr;
}

const StatGroup *
StatGroup::findGroup(const std::string &name) const
{
    for (const auto *c : children_) {
        if (c->name() == name)
            return c;
    }
    return nullptr;
}

} // namespace stats
} // namespace lbic
