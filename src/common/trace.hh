/**
 * @file
 * The event-trace subsystem: pluggable sinks for pipeline and cache-
 * port events.
 *
 * Producers (the core's pipeline stages, the port schedulers) publish
 * two kinds of events through a Tracer:
 *
 *  - InstRecord: the complete lifecycle of one committed instruction,
 *    with per-stage cycle stamps (fetch, dispatch, issue, memory
 *    access, writeback, commit). Emitted once, at commit.
 *  - BankEvent: a point event inside a cache-port organization (a bank
 *    conflict, a line-buffer combine, a store-queue drain, ...).
 *
 * Sinks consume these events and render a format:
 *
 *  - TextTraceSink: one human-readable line per event.
 *  - ChromeTraceSink: Chrome trace-event JSON (the `traceEvents` array
 *    format), loadable in Perfetto or chrome://tracing. Cycles map to
 *    microsecond timestamps; pipeline stages become duration events on
 *    one track per RUU slot, bank events become instant events on one
 *    track per bank.
 *  - KonataTraceSink: the Kanata pipeline-viewer log format (the
 *    Onikiri2 / gem5 `O3PipeView` ecosystem). Records are buffered and
 *    written cycle-sorted at finish(), as the format requires a
 *    monotonic cycle cursor.
 *
 * Disabled-path cost: a producer holds a raw `Tracer *` that is null
 * when tracing is off; every instrumentation site is guarded by that
 * one-pointer test, so the hot path pays a single well-predicted
 * branch and performs no virtual call and no allocation. Attaching a
 * sink is the only thing that makes events flow.
 */

#ifndef LBIC_COMMON_TRACE_HH
#define LBIC_COMMON_TRACE_HH

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hh"
#include "isa/op_class.hh"

namespace lbic
{
namespace trace
{

/** Sentinel for "this stage was never reached". */
constexpr Cycle no_stamp = ~Cycle{0};

/** Per-stage cycle stamps of one instruction's trip down the pipe. */
struct InstRecord
{
    InstSeq seq = 0;
    OpClass op = OpClass::IntAlu;
    Addr addr = 0;           //!< effective address (memory ops only)
    bool is_mem = false;
    bool is_store = false;

    Cycle fetch = no_stamp;      //!< pulled from the workload stream
    Cycle dispatch = no_stamp;   //!< allocated an RUU/LSQ slot
    Cycle issue = no_stamp;      //!< operands ready, began execution
    Cycle mem = no_stamp;        //!< granted a cache port (memory ops)
    Cycle writeback = no_stamp;  //!< result available to dependents
    Cycle commit = no_stamp;     //!< retired in program order

    /** Memory-outcome annotation. */
    enum class Note : std::uint8_t { None, Hit, Miss, Forwarded };
    Note note = Note::None;

    /** RUU slot the instruction occupied (a stable display track). */
    std::uint32_t slot = 0;
};

/** What happened inside a cache-port organization. */
enum class BankEventKind : std::uint8_t
{
    ConflictSameLine,   //!< blocked behind the same line (bank/repl)
    ConflictDiffLine,   //!< blocked behind a different line
    PortsExhausted,     //!< same-line combine beyond the N buffer ports
    Combine,            //!< line-buffer hit: combined with the leader
    StoreQueueFull,     //!< store rejected, bank store queue full
    StoreDrain,         //!< queued store written on an idle bank cycle
    StoreDirectWrite,   //!< leading store bypassed a full queue
    StoreBroadcast,     //!< store broadcast hogging all replica ports
    BeyondWindow,       //!< ready request outside the crossbar window
};

/** Stable lower-case name of a BankEventKind. */
const char *bankEventName(BankEventKind kind);

/** One point event inside a port organization. */
struct BankEvent
{
    Cycle cycle = 0;
    std::uint32_t bank = 0;
    BankEventKind kind = BankEventKind::ConflictDiffLine;
    Addr line = 0;       //!< line address involved (0 when untracked)
};

/** Consumes trace events and renders one output format. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** One instruction retired with its full set of stage stamps. */
    virtual void instRetired(const InstRecord &rec) = 0;

    /** One cache-port event. */
    virtual void bankEvent(const BankEvent &ev) = 0;

    /** Flush buffered state; called once when the run ends. */
    virtual void finish() {}
};

/**
 * The producer-facing handle. Producers keep a `Tracer *` that is
 * null while tracing is disabled; all forwarding methods are inline
 * and only dereference the sink when one is attached.
 */
class Tracer
{
  public:
    bool enabled() const { return sink_ != nullptr; }

    /** Attach (or detach, with nullptr) the consuming sink. */
    void attach(TraceSink *sink) { sink_ = sink; }

    void
    instRetired(const InstRecord &rec)
    {
        if (sink_)
            sink_->instRetired(rec);
    }

    void
    bankEvent(Cycle cycle, std::uint32_t bank, BankEventKind kind,
              Addr line = 0)
    {
        if (sink_)
            sink_->bankEvent(BankEvent{cycle, bank, kind, line});
    }

    void
    finish()
    {
        if (sink_)
            sink_->finish();
    }

  private:
    TraceSink *sink_ = nullptr;
};

/** One line per event; the grep-friendly view. */
class TextTraceSink : public TraceSink
{
  public:
    explicit TextTraceSink(std::ostream &os) : os_(os) {}

    void instRetired(const InstRecord &rec) override;
    void bankEvent(const BankEvent &ev) override;

  private:
    std::ostream &os_;
};

/**
 * Chrome trace-event JSON (`{"traceEvents": [...]}`); events stream
 * out as they arrive (the format does not require timestamp order).
 */
class ChromeTraceSink : public TraceSink
{
  public:
    explicit ChromeTraceSink(std::ostream &os);

    void instRetired(const InstRecord &rec) override;
    void bankEvent(const BankEvent &ev) override;
    void finish() override;

  private:
    /** Emit one event object's shared prefix. */
    void beginEvent();

    std::ostream &os_;
    bool first_ = true;
    bool finished_ = false;
};

/**
 * Kanata pipeline-viewer log (https://github.com/shioyadan/Konata).
 * Buffers every record and writes the whole file at finish(), since
 * the format interleaves all instructions against one monotonically
 * advancing cycle cursor.
 */
class KonataTraceSink : public TraceSink
{
  public:
    explicit KonataTraceSink(std::ostream &os) : os_(os) {}

    void instRetired(const InstRecord &rec) override;
    void bankEvent(const BankEvent &ev) override {(void)ev;}
    void finish() override;

  private:
    std::ostream &os_;
    std::vector<InstRecord> records_;
    bool finished_ = false;
};

/**
 * Create the sink for @p format ("text", "chrome" or "konata"),
 * writing to @p os. Unknown formats are fatal (a user error).
 */
std::unique_ptr<TraceSink> makeTraceSink(const std::string &format,
                                         std::ostream &os);

} // namespace trace
} // namespace lbic

#endif // LBIC_COMMON_TRACE_HH
