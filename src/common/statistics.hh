/**
 * @file
 * A small statistics package in the spirit of gem5's stats framework.
 *
 * Components own a StatGroup and register named statistics with it.
 * Three kinds are provided:
 *
 *  - Scalar:       a simple accumulating counter.
 *  - Distribution: a bucketed histogram with running mean/min/max.
 *  - Derived:      a value computed at dump time from other stats
 *                  (gem5's "Formula").
 *
 * StatGroups nest, so `Simulator` can dump one tree covering the core,
 * the LSQ, each cache level and the port scheduler.
 */

#ifndef LBIC_COMMON_STATISTICS_HH
#define LBIC_COMMON_STATISTICS_HH

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>
#include <string>
#include <vector>

#include "logging.hh"

namespace lbic
{
namespace stats
{

class StatGroup;

/** Base class for all named statistics. */
class StatBase
{
  public:
    StatBase(StatGroup *parent, std::string name, std::string desc);
    virtual ~StatBase() = default;

    StatBase(const StatBase &) = delete;
    StatBase &operator=(const StatBase &) = delete;

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

    /** Print this statistic as one or more `name value # desc` lines. */
    virtual void print(std::ostream &os,
                       const std::string &prefix) const = 0;

    /** Emit this statistic as one or more JSON object members. */
    virtual void printJson(std::ostream &os, bool &first) const = 0;

    /**
     * Emit this statistic as one or more flat JSON members keyed by
     * dotted path ("<prefix><name>" plus any sub-keys). Together with
     * StatGroup::printJsonFlat this produces one flat object whose
     * keys match the text dump's left column line for line.
     */
    virtual void printJsonFlat(std::ostream &os,
                               const std::string &prefix,
                               bool &first) const = 0;

    /** Reset to the just-constructed state. */
    virtual void reset() = 0;

  private:
    std::string name_;
    std::string desc_;
};

/** An accumulating scalar counter. */
class Scalar : public StatBase
{
  public:
    using StatBase::StatBase;

    Scalar &operator++() { value_ += 1.0; return *this; }
    Scalar &operator+=(double v) { value_ += v; return *this; }
    void set(double v) { value_ = v; }
    double value() const { return value_; }

    void print(std::ostream &os, const std::string &prefix) const override;
    void printJson(std::ostream &os, bool &first) const override;
    void printJsonFlat(std::ostream &os, const std::string &prefix,
                       bool &first) const override;
    void reset() override { value_ = 0.0; }

  private:
    double value_ = 0.0;
};

/** A fixed-width bucketed histogram with running summary moments. */
class Distribution : public StatBase
{
  public:
    /**
     * @param parent owning group.
     * @param name statistic name.
     * @param desc one-line description.
     * @param min lowest bucketed value.
     * @param max highest bucketed value.
     * @param bucket_size width of each bucket (> 0).
     */
    Distribution(StatGroup *parent, std::string name, std::string desc,
                 std::uint64_t min, std::uint64_t max,
                 std::uint64_t bucket_size);

    /**
     * Record @p count samples of value @p v. Inline: several
     * histograms (grants per cycle, per-bank rejections) sample on
     * per-cycle simulation paths.
     */
    void
    sample(std::uint64_t v, std::uint64_t count = 1)
    {
        if (v < min_) {
            underflow_ += count;
        } else if (v > max_) {
            overflow_ += count;
        } else if (bucket_size_ == 1) {
            // Unit-width buckets dodge the integer divide.
            buckets_[v - min_] += count;
        } else {
            buckets_[(v - min_) / bucket_size_] += count;
        }
        samples_ += count;
        sum_ += static_cast<double>(v) * static_cast<double>(count);
        min_sample_ = std::min(min_sample_, v);
        max_sample_ = std::max(max_sample_, v);
    }

    std::uint64_t samples() const { return samples_; }
    double mean() const
    {
        return samples_ ? sum_ / static_cast<double>(samples_) : 0.0;
    }
    std::uint64_t minSample() const { return min_sample_; }
    std::uint64_t maxSample() const { return max_sample_; }

    /** Count of samples that landed in the bucket containing @p v. */
    std::uint64_t bucketCount(std::uint64_t v) const;

    void print(std::ostream &os, const std::string &prefix) const override;
    void printJson(std::ostream &os, bool &first) const override;
    void printJsonFlat(std::ostream &os, const std::string &prefix,
                       bool &first) const override;
    void reset() override;

  private:
    std::uint64_t min_;
    std::uint64_t max_;
    std::uint64_t bucket_size_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t samples_ = 0;
    double sum_ = 0.0;
    std::uint64_t min_sample_ = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t max_sample_ = 0;
};

/** A value computed at dump time from other statistics. */
class Derived : public StatBase
{
  public:
    Derived(StatGroup *parent, std::string name, std::string desc,
            std::function<double()> fn);

    double value() const { return fn_(); }

    void print(std::ostream &os, const std::string &prefix) const override;
    void printJson(std::ostream &os, bool &first) const override;
    void printJsonFlat(std::ostream &os, const std::string &prefix,
                       bool &first) const override;
    void reset() override {}

  private:
    std::function<double()> fn_;
};

/** A named collection of statistics; groups nest into a tree. */
class StatGroup
{
  public:
    /**
     * @param parent enclosing group, or nullptr for a root.
     * @param name group name, used as a dotted prefix when printing.
     */
    explicit StatGroup(StatGroup *parent = nullptr,
                       std::string name = "");
    ~StatGroup();

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    /** Called by StatBase's constructor. */
    void addStat(StatBase *stat);

    /**
     * Print every stat in this group and its children. Output is
     * ordered by name (stats first, then child groups) so dumps are
     * deterministic and diffable regardless of construction order.
     */
    void print(std::ostream &os, const std::string &prefix = "") const;

    /**
     * Emit the group (recursively) as a JSON object: statistics as
     * members, child groups as nested objects, both sorted by name
     * like print().
     */
    void printJson(std::ostream &os) const;

    /**
     * Emit the group (recursively) as ONE flat JSON object keyed by
     * dotted path ("core.lsq.occupancy.mean"), in the same order as
     * print(). Flat keys need no nested parsing -- the ledger,
     * profiler JSON and stats_json= dumps all share this shape, so
     * external tooling reads all three with one parser.
     */
    void printJsonFlat(std::ostream &os) const;

    /** Reset every stat in this group and its children. */
    void reset();

    /**
     * Find a stat by name (nullptr if absent). A plain name searches
     * the directly-owned stats; a dotted path ("core.lsq.occupancy")
     * descends through child groups, one component per level.
     */
    const StatBase *find(const std::string &name) const;

    /** Find a direct child group by name (nullptr if absent). */
    const StatGroup *findGroup(const std::string &name) const;

    const std::string &name() const { return name_; }

  private:
    void addChild(StatGroup *child);
    void removeChild(StatGroup *child);

    /** Registration-order members, sorted by name for dumping. */
    std::vector<const StatBase *> sortedStats() const;
    std::vector<const StatGroup *> sortedChildren() const;

    void printJsonFlatInner(std::ostream &os, const std::string &prefix,
                            bool &first) const;

    StatGroup *parent_;
    std::string name_;
    std::vector<StatBase *> stats_;
    std::vector<StatGroup *> children_;
};

} // namespace stats
} // namespace lbic

#endif // LBIC_COMMON_STATISTICS_HH
