#include "logging.hh"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace lbic
{
namespace detail
{

namespace
{

/**
 * When true (set by tests), panic/fatal throw instead of terminating so
 * death behaviour can be unit tested without forking.
 */
bool throw_on_error = false;

} // anonymous namespace

void
setThrowOnError(bool enable)
{
    throw_on_error = enable;
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    if (throw_on_error)
        throw std::logic_error("panic: " + msg);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    if (throw_on_error)
        throw std::runtime_error("fatal: " + msg);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace detail
} // namespace lbic
