#include "logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <stdexcept>

namespace lbic
{

namespace detail
{

namespace
{

/**
 * When true (set by tests), panic/fatal throw instead of terminating so
 * death behaviour can be unit tested without forking.
 */
bool throw_on_error = false;

/** Serializes every line the log sink writes (whole lines only). */
std::mutex log_mutex;

/** Test hook: when set, lines are appended here instead of printed. */
std::vector<std::string> *log_capture = nullptr;

/** LBIC_LOG_LEVEL parsed on first use; setLogLevel() overrides. */
int
levelFromEnv()
{
    const char *env = std::getenv("LBIC_LOG_LEVEL");
    if (!env)
        return static_cast<int>(LogLevel::Info);
    if (!std::strcmp(env, "quiet") || !std::strcmp(env, "0"))
        return static_cast<int>(LogLevel::Quiet);
    if (!std::strcmp(env, "warn") || !std::strcmp(env, "1"))
        return static_cast<int>(LogLevel::Warn);
    if (!std::strcmp(env, "info") || !std::strcmp(env, "2"))
        return static_cast<int>(LogLevel::Info);
    std::fprintf(stderr,
                 "warn: unknown LBIC_LOG_LEVEL '%s' "
                 "(expected quiet, warn or info)\n", env);
    return static_cast<int>(LogLevel::Info);
}

std::atomic<int> log_level{-1};  //!< -1: not yet initialized

int
currentLevel()
{
    int v = log_level.load(std::memory_order_relaxed);
    if (v < 0) {
        v = levelFromEnv();
        log_level.store(v, std::memory_order_relaxed);
    }
    return v;
}

/**
 * The process-wide sink: write one complete line atomically. All
 * paths that reach a real stream go through here.
 */
void
sinkLine(std::FILE *stream, const std::string &line)
{
    const std::lock_guard<std::mutex> lock(log_mutex);
    if (log_capture) {
        log_capture->push_back(line);
        return;
    }
    std::fputs(line.c_str(), stream);
    std::fputc('\n', stream);
}

} // anonymous namespace

void
setThrowOnError(bool enable)
{
    throw_on_error = enable;
}

void
setLogCapture(std::vector<std::string> *capture)
{
    const std::lock_guard<std::mutex> lock(log_mutex);
    log_capture = capture;
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    sinkLine(stderr, "panic: " + msg + " (" + file + ":"
                         + std::to_string(line) + ")");
    if (throw_on_error)
        throw std::logic_error("panic: " + msg);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    sinkLine(stderr, "fatal: " + msg + " (" + file + ":"
                         + std::to_string(line) + ")");
    if (throw_on_error)
        throw std::runtime_error("fatal: " + msg);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (currentLevel() < static_cast<int>(LogLevel::Warn))
        return;
    sinkLine(stderr, "warn: " + msg);
}

void
informImpl(const std::string &msg)
{
    if (currentLevel() < static_cast<int>(LogLevel::Info))
        return;
    sinkLine(stdout, "info: " + msg);
}

} // namespace detail

void
setLogLevel(LogLevel level)
{
    detail::log_level.store(static_cast<int>(level),
                            std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return static_cast<LogLevel>(detail::currentLevel());
}

} // namespace lbic
