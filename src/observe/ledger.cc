#include "ledger.hh"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fstream>
#include <map>
#include <sstream>
#include <sys/stat.h>

#include <fcntl.h>
#include <unistd.h>

#include "common/sim_error.hh"

namespace lbic
{
namespace observe
{

namespace
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        if (static_cast<unsigned char>(c) >= 0x20)
            out.push_back(c);
    }
    return out;
}

std::string
quoted(const std::string &s)
{
    return "\"" + jsonEscape(s) + "\"";
}

std::string
number(double v)
{
    std::ostringstream os;
    os << v;
    return os.str();
}

/**
 * Scan one JSON scalar value starting at @p i: a quoted string or a
 * bare literal (number, true/false/null). Returns false on malformed
 * input; on success @p value holds the *unquoted* string payload or
 * the literal text, @p was_string distinguishes them, and @p i is
 * left one past the value.
 */
bool
scanValue(const std::string &s, std::size_t &i, std::string &value,
          bool &was_string)
{
    value.clear();
    if (i >= s.size())
        return false;
    if (s[i] == '"') {
        was_string = true;
        for (++i; i < s.size(); ++i) {
            if (s[i] == '\\') {
                if (++i >= s.size())
                    return false;
                value.push_back(s[i]);
            } else if (s[i] == '"') {
                ++i;
                return true;
            } else {
                value.push_back(s[i]);
            }
        }
        return false; // unterminated string
    }
    was_string = false;
    while (i < s.size() && s[i] != ',' && s[i] != '}') {
        if (!std::isspace(static_cast<unsigned char>(s[i])))
            value.push_back(s[i]);
        ++i;
    }
    return !value.empty();
}

std::uint64_t
toU64(const std::string &s)
{
    return std::strtoull(s.c_str(), nullptr, 10);
}

} // anonymous namespace

std::string
LedgerEntry::toJson() const
{
    // Every member rendered, then emitted in sorted-key order so the
    // line is diffable and matches the repo's other flat JSON dumps.
    std::map<std::string, std::string> kv;
    kv["schema"] = std::to_string(schema);
    kv["config_hash"] = quoted(config_hash);
    kv["driver"] = quoted(driver);
    kv["workload"] = quoted(workload);
    kv["seed"] = std::to_string(seed);
    kv["insts"] = std::to_string(insts);
    kv["git_sha"] = quoted(git_sha);
    kv["label"] = quoted(label);
    kv["port_spec"] = quoted(port_spec);
    kv["status"] = quoted(status);
    kv["timestamp"] = quoted(timestamp);
    kv["ipc"] = number(ipc);
    kv["instructions"] = std::to_string(instructions);
    kv["cycles"] = std::to_string(cycles);
    kv["wall_ms"] = number(wall_ms);
    kv["insts_per_sec"] = number(insts_per_sec);
    kv["sampled"] = sampled ? "true" : "false";
    for (const auto &e : extra) {
        if (!kv.count(e.first))
            kv[e.first] = quoted(e.second);
    }
    std::string out = "{";
    bool first = true;
    for (const auto &e : kv) {
        out += (first ? "\"" : ",\"") + e.first + "\":" + e.second;
        first = false;
    }
    out += "}";
    return out;
}

bool
LedgerEntry::fromJson(const std::string &line, LedgerEntry &out)
{
    std::size_t i = line.find_first_not_of(" \t\r");
    if (i == std::string::npos || line[i] != '{')
        return false;
    ++i;
    for (;;) {
        while (i < line.size()
               && (std::isspace(static_cast<unsigned char>(line[i]))
                   || line[i] == ','))
            ++i;
        if (i >= line.size())
            return false;
        if (line[i] == '}')
            break;
        std::string key;
        bool was_string = false;
        if (!scanValue(line, i, key, was_string) || !was_string)
            return false;
        while (i < line.size()
               && std::isspace(static_cast<unsigned char>(line[i])))
            ++i;
        if (i >= line.size() || line[i] != ':')
            return false;
        ++i;
        while (i < line.size()
               && std::isspace(static_cast<unsigned char>(line[i])))
            ++i;
        std::string value;
        if (!scanValue(line, i, value, was_string))
            return false;

        if (key == "schema")
            out.schema = static_cast<unsigned>(toU64(value));
        else if (key == "config_hash")
            out.config_hash = value;
        else if (key == "driver")
            out.driver = value;
        else if (key == "workload")
            out.workload = value;
        else if (key == "seed")
            out.seed = toU64(value);
        else if (key == "insts")
            out.insts = toU64(value);
        else if (key == "git_sha")
            out.git_sha = value;
        else if (key == "label")
            out.label = value;
        else if (key == "port_spec")
            out.port_spec = value;
        else if (key == "status")
            out.status = value;
        else if (key == "timestamp")
            out.timestamp = value;
        else if (key == "ipc")
            out.ipc = std::strtod(value.c_str(), nullptr);
        else if (key == "instructions")
            out.instructions = toU64(value);
        else if (key == "cycles")
            out.cycles = toU64(value);
        else if (key == "wall_ms")
            out.wall_ms = std::strtod(value.c_str(), nullptr);
        else if (key == "insts_per_sec")
            out.insts_per_sec = std::strtod(value.c_str(), nullptr);
        else if (key == "sampled")
            out.sampled = value == "true";
        else
            out.extra[key] = value;
    }
    return true;
}

void
appendTextAtomic(const std::string &path, const std::string &text)
{
    if (text.empty())
        return;

    // Heal a torn tail: if a previous writer crashed mid-line, start
    // our batch with a newline so the torn line stays isolated (the
    // reader drops it) instead of fusing with our first record.
    bool needs_leading_newline = false;
    {
        std::ifstream in(path, std::ios::binary | std::ios::ate);
        if (in && in.tellg() > 0) {
            in.seekg(-1, std::ios::end);
            char last = '\n';
            in.get(last);
            needs_leading_newline = last != '\n';
        }
    }

    std::string buf;
    if (needs_leading_newline)
        buf.push_back('\n');
    buf += text;

    // One O_APPEND write per batch on a private fd: concurrent
    // appenders (parallel CI shards, two sweeps at once, progress
    // lines on stderr) cannot interleave inside the batch, and a
    // crash can only truncate the final line -- which the readers
    // recover from by design.
    const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT,
                          0644);
    if (fd < 0) {
        throw SimError(SimErrorKind::Config,
                       "cannot open '" + path
                           + "' for append: " + std::strerror(errno));
    }
    std::size_t off = 0;
    while (off < buf.size()) {
        const ::ssize_t n =
            ::write(fd, buf.data() + off, buf.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            const int err = errno;
            ::close(fd);
            throw SimError(SimErrorKind::Config,
                           "append to '" + path
                               + "' failed: " + std::strerror(err));
        }
        off += static_cast<std::size_t>(n);
    }
    ::close(fd);
}

void
appendLedger(const std::string &path,
             const std::vector<LedgerEntry> &entries)
{
    if (entries.empty())
        return;
    std::string buf;
    for (const LedgerEntry &e : entries) {
        buf += e.toJson();
        buf.push_back('\n');
    }
    appendTextAtomic(path, buf);
}

LedgerReadResult
loadLedger(const std::string &path)
{
    LedgerReadResult out;
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return out; // missing ledger == empty history

    std::string line;
    bool last_ok = true;
    while (std::getline(in, line)) {
        if (line.empty()
            || line.find_first_not_of(" \t\r") == std::string::npos)
            continue;
        LedgerEntry e;
        if (LedgerEntry::fromJson(line, e)) {
            out.entries.push_back(std::move(e));
            last_ok = true;
        } else {
            ++out.malformed;
            last_ok = false;
        }
    }
    out.truncated = !last_ok;
    return out;
}

std::string
ledgerTimestamp()
{
    const std::time_t now = std::time(nullptr);
    std::tm tm{};
#if defined(_WIN32)
    gmtime_s(&tm, &now);
#else
    gmtime_r(&now, &tm);
#endif
    char buf[32];
    std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
    return buf;
}

std::string
resolveLedgerPath(const std::string &knob)
{
    auto resolve = [](const std::string &v) -> std::string {
        if (v == "none" || v == "off")
            return "";
        return v;
    };
    if (!knob.empty() && knob != "auto")
        return resolve(knob);
    if (const char *env = std::getenv("LBIC_LEDGER")) {
        if (*env && std::string(env) != "auto")
            return resolve(env);
    }
    struct stat st{};
    if (::stat("results", &st) == 0 && S_ISDIR(st.st_mode))
        return "results/ledger.jsonl";
    return "";
}

} // namespace observe
} // namespace lbic
