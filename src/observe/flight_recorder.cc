#include "flight_recorder.hh"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <ostream>
#include <utility>

#include <unistd.h>

#include "ledger.hh"
#include "profiler.hh"

namespace lbic
{
namespace observe
{

namespace
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        if (static_cast<unsigned char>(c) >= 0x20)
            out.push_back(c);
    }
    return out;
}

std::string
quoted(const std::string &s)
{
    return "\"" + jsonEscape(s) + "\"";
}

/** Same scalar scanner as the ledger parser: quoted string or bare
 * literal, @p i left one past the value. */
bool
scanValue(const std::string &s, std::size_t &i, std::string &value,
          bool &was_string)
{
    value.clear();
    if (i >= s.size())
        return false;
    if (s[i] == '"') {
        was_string = true;
        for (++i; i < s.size(); ++i) {
            if (s[i] == '\\') {
                if (++i >= s.size())
                    return false;
                value.push_back(s[i]);
            } else if (s[i] == '"') {
                ++i;
                return true;
            } else {
                value.push_back(s[i]);
            }
        }
        return false; // unterminated string
    }
    was_string = false;
    while (i < s.size() && s[i] != ',' && s[i] != '}') {
        if (!std::isspace(static_cast<unsigned char>(s[i])))
            value.push_back(s[i]);
        ++i;
    }
    return !value.empty();
}

std::int64_t
toI64(const std::string &s)
{
    return std::strtoll(s.c_str(), nullptr, 10);
}

std::uint64_t
toU64(const std::string &s)
{
    return std::strtoull(s.c_str(), nullptr, 10);
}

/** Raw (uncorrected) monotonic nanoseconds. */
std::int64_t
rawMonotonicNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Spill once the pending buffer crosses this size. */
constexpr std::size_t spill_threshold = 64 * 1024;

} // anonymous namespace

std::string
SpanEvent::toJson() const
{
    std::map<std::string, std::string> kv;
    kv["schema"] = std::to_string(flight_schema_version);
    kv["id"] = std::to_string(id);
    kv["parent"] = std::to_string(parent);
    kv["pid"] = std::to_string(pid);
    kv["tid"] = std::to_string(tid);
    kv["kind"] = quoted(kind);
    kv["cat"] = quoted(cat);
    kv["name"] = quoted(name);
    kv["job"] = quoted(job);
    kv["ts_ns"] = std::to_string(ts_ns);
    kv["dur_ns"] = std::to_string(dur_ns);
    kv["excl_ns"] = std::to_string(excl_ns);
    for (const auto &a : args)
        kv["a_" + a.first] = quoted(a.second);
    std::string out = "{";
    bool first = true;
    for (const auto &e : kv) {
        out += (first ? "\"" : ",\"") + e.first + "\":" + e.second;
        first = false;
    }
    out += "}";
    return out;
}

bool
SpanEvent::fromJson(const std::string &line, SpanEvent &out)
{
    std::size_t i = line.find_first_not_of(" \t\r");
    if (i == std::string::npos || line[i] != '{')
        return false;
    ++i;
    for (;;) {
        while (i < line.size()
               && (std::isspace(static_cast<unsigned char>(line[i]))
                   || line[i] == ','))
            ++i;
        if (i >= line.size())
            return false;
        if (line[i] == '}')
            break;
        std::string key;
        bool was_string = false;
        if (!scanValue(line, i, key, was_string) || !was_string)
            return false;
        while (i < line.size()
               && std::isspace(static_cast<unsigned char>(line[i])))
            ++i;
        if (i >= line.size() || line[i] != ':')
            return false;
        ++i;
        while (i < line.size()
               && std::isspace(static_cast<unsigned char>(line[i])))
            ++i;
        std::string value;
        if (!scanValue(line, i, value, was_string))
            return false;

        if (key == "schema")
            ; // version recognized, nothing breaking yet
        else if (key == "id")
            out.id = toU64(value);
        else if (key == "parent")
            out.parent = toU64(value);
        else if (key == "pid")
            out.pid = static_cast<int>(toI64(value));
        else if (key == "tid")
            out.tid = static_cast<int>(toI64(value));
        else if (key == "kind")
            out.kind = value;
        else if (key == "cat")
            out.cat = value;
        else if (key == "name")
            out.name = value;
        else if (key == "job")
            out.job = value;
        else if (key == "ts_ns")
            out.ts_ns = toI64(value);
        else if (key == "dur_ns")
            out.dur_ns = toI64(value);
        else if (key == "excl_ns")
            out.excl_ns = toI64(value);
        else if (key.rfind("a_", 0) == 0)
            out.args[key.substr(2)] = value;
        else
            out.args[key] = value; // forward compatibility
    }
    // A record with no kind is not a flight event (or a fused/torn
    // line that happened to stay balanced); reject it.
    return !out.kind.empty();
}

FlightRecorder::FlightRecorder(std::string path, std::int64_t epoch_ns)
    : path_(std::move(path)), epoch_ns_(epoch_ns),
      pid_(static_cast<int>(::getpid()))
{
}

FlightRecorder::~FlightRecorder()
{
    try {
        flush();
    } catch (...) {
        // Destructor during exit: losing the tail beats aborting.
    }
}

std::int64_t
FlightRecorder::now() const
{
    return rawMonotonicNs() - epoch_ns_;
}

int
FlightRecorder::tidOfLocked(std::thread::id id)
{
    auto it = tids_.find(id);
    if (it != tids_.end())
        return it->second;
    const int tid = static_cast<int>(tids_.size());
    tids_.emplace(id, tid);
    return tid;
}

void
FlightRecorder::emitLocked(const SpanEvent &ev)
{
    pending_ += ev.toJson();
    pending_.push_back('\n');
    maybeSpillLocked();
}

void
FlightRecorder::maybeSpillLocked()
{
    if (path_.empty() || pending_.size() < spill_threshold)
        return;
    std::string buf;
    buf.swap(pending_);
    appendTextAtomic(path_, buf);
}

std::uint64_t
FlightRecorder::beginSpan(const std::string &cat,
                          const std::string &name,
                          const std::string &job)
{
    const std::int64_t ts = now();
    std::lock_guard<std::mutex> lock(mu_);
    const int tid = tidOfLocked(std::this_thread::get_id());
    OpenSpan open;
    open.id = next_id_++;
    open.cat = cat;
    open.name = name;
    open.job = job;
    open.ts_ns = ts;
    stacks_[tid].push_back(std::move(open));
    return stacks_[tid].back().id;
}

void
FlightRecorder::endSpan(std::uint64_t id,
                        const std::map<std::string, std::string> &args)
{
    const std::int64_t end = now();
    std::lock_guard<std::mutex> lock(mu_);
    const int tid = tidOfLocked(std::this_thread::get_id());
    auto &stack = stacks_[tid];
    // The id is normally the top of this thread's stack; tolerate an
    // unbalanced close by discarding anything opened above it (those
    // spans were abandoned, never emitted).
    std::size_t pos = stack.size();
    while (pos > 0 && stack[pos - 1].id != id)
        --pos;
    if (pos == 0)
        return; // not open on this thread; nothing to close
    const OpenSpan open = stack[pos - 1];
    stack.resize(pos - 1);

    SpanEvent ev;
    ev.id = open.id;
    ev.parent = stack.empty() ? 0 : stack.back().id;
    ev.pid = pid_;
    ev.tid = tid;
    ev.kind = "span";
    ev.cat = open.cat;
    ev.name = open.name;
    ev.job = open.job;
    ev.ts_ns = open.ts_ns;
    ev.dur_ns = end - open.ts_ns;
    ev.excl_ns = ev.dur_ns - open.child_ns;
    ev.args = args;
    if (!stack.empty())
        stack.back().child_ns += ev.dur_ns;
    emitLocked(ev);
}

std::uint64_t
FlightRecorder::completeSpan(const std::string &cat,
                             const std::string &name,
                             const std::string &job, std::int64_t ts_ns,
                             std::int64_t dur_ns,
                             const std::map<std::string, std::string> &args,
                             bool attach_to_open)
{
    std::lock_guard<std::mutex> lock(mu_);
    const int tid = tidOfLocked(std::this_thread::get_id());
    auto &stack = stacks_[tid];

    SpanEvent ev;
    ev.id = next_id_++;
    ev.parent = 0;
    if (attach_to_open && !stack.empty()) {
        ev.parent = stack.back().id;
        stack.back().child_ns += dur_ns;
    }
    ev.pid = pid_;
    ev.tid = tid;
    ev.kind = "span";
    ev.cat = cat;
    ev.name = name;
    ev.job = job;
    ev.ts_ns = ts_ns;
    ev.dur_ns = dur_ns;
    ev.excl_ns = dur_ns; // leaf: no recorded children
    ev.args = args;
    emitLocked(ev);
    return ev.id;
}

void
FlightRecorder::instant(const std::string &cat, const std::string &name,
                        const std::string &job,
                        const std::map<std::string, std::string> &args)
{
    const std::int64_t ts = now();
    std::lock_guard<std::mutex> lock(mu_);
    const int tid = tidOfLocked(std::this_thread::get_id());
    auto &stack = stacks_[tid];

    SpanEvent ev;
    ev.id = next_id_++;
    ev.parent = stack.empty() ? 0 : stack.back().id;
    ev.pid = pid_;
    ev.tid = tid;
    ev.kind = "instant";
    ev.cat = cat;
    ev.name = name;
    ev.job = job;
    ev.ts_ns = ts;
    ev.args = args;
    emitLocked(ev);
}

void
FlightRecorder::meta(const std::string &name,
                     const std::map<std::string, std::string> &args)
{
    const std::int64_t ts = now();
    std::lock_guard<std::mutex> lock(mu_);

    SpanEvent ev;
    ev.id = next_id_++;
    ev.pid = pid_;
    ev.tid = tidOfLocked(std::this_thread::get_id());
    ev.kind = "meta";
    ev.cat = "meta";
    ev.name = name;
    ev.ts_ns = ts;
    ev.args = args;
    emitLocked(ev);
}

void
FlightRecorder::bridgeProfiler(const Profiler &prof,
                               const std::string &job)
{
    const std::int64_t end = now();
    const Profiler::Node &root = prof.root();

    std::lock_guard<std::mutex> lock(mu_);
    const int tid = tidOfLocked(std::this_thread::get_id());
    auto &stack = stacks_[tid];

    const auto inclusive = static_cast<std::int64_t>(root.inclusive_ns);
    const std::int64_t root_ts = end - inclusive;
    // Attach to the innermost open span only when the bridged tree
    // fits inside it: a profiler that was constructed before the
    // span opened would escape the parent's window (and break the
    // containment identity), so such a tree is emitted as a root.
    std::uint64_t parent_id = 0;
    if (!stack.empty() && root_ts >= stack.back().ts_ns) {
        parent_id = stack.back().id;
        stack.back().child_ns += inclusive;
    }

    // Children are laid out back to back from the parent's start, the
    // parent's self time forming the tail; the profiler's verified
    // identity (self + sum(children inclusive) == inclusive) makes
    // containment and the recorder's telescoping identity exact.
    struct Frame
    {
        const Profiler::Node *node;
        std::int64_t ts;
        std::uint64_t parent;
    };
    std::vector<Frame> work{{&root, root_ts, parent_id}};
    while (!work.empty()) {
        const Frame f = work.back();
        work.pop_back();

        SpanEvent ev;
        ev.id = next_id_++;
        ev.parent = f.parent;
        ev.pid = pid_;
        ev.tid = tid;
        ev.kind = "span";
        ev.cat = "sim";
        ev.name = f.node->name;
        ev.job = job;
        ev.ts_ns = f.ts;
        ev.dur_ns = static_cast<std::int64_t>(f.node->inclusive_ns);
        ev.excl_ns = static_cast<std::int64_t>(f.node->self_ns);
        ev.args["calls"] = std::to_string(f.node->calls);
        emitLocked(ev);

        std::int64_t cursor = f.ts;
        for (const auto &child : f.node->children) {
            work.push_back({child.get(), cursor, ev.id});
            cursor += static_cast<std::int64_t>(child->inclusive_ns);
        }
    }
}

void
FlightRecorder::ingest(const std::string &jsonl)
{
    if (jsonl.empty())
        return;
    std::lock_guard<std::mutex> lock(mu_);
    pending_ += jsonl;
    if (pending_.back() != '\n')
        pending_.push_back('\n');
    maybeSpillLocked();
}

std::string
FlightRecorder::takeBatch()
{
    std::lock_guard<std::mutex> lock(mu_);
    std::string out;
    out.swap(pending_);
    return out;
}

void
FlightRecorder::flush()
{
    std::string buf;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (path_.empty() || pending_.empty())
            return;
        buf.swap(pending_);
    }
    appendTextAtomic(path_, buf);
}

namespace
{

std::mutex g_rec_mu;
std::unique_ptr<FlightRecorder> g_rec;
std::atomic<FlightRecorder *> g_rec_ptr{nullptr};
bool g_env_checked = false;

std::int64_t
epochFromEnvOrNow()
{
    if (const char *e = std::getenv("LBIC_FLIGHT_EPOCH_NS")) {
        if (*e)
            return toI64(e);
    }
    return rawMonotonicNs();
}

} // anonymous namespace

FlightRecorder *
flightRecorder()
{
    FlightRecorder *p = g_rec_ptr.load(std::memory_order_acquire);
    if (p)
        return p;
    std::lock_guard<std::mutex> lock(g_rec_mu);
    if (g_rec)
        return g_rec.get();
    if (g_env_checked)
        return nullptr; // cached negative: one load on the hot path
    g_env_checked = true;
    const char *path = std::getenv("LBIC_FLIGHT_RECORD");
    if (!path || !*path)
        return nullptr;
    g_rec.reset(new FlightRecorder(path, epochFromEnvOrNow()));
    g_rec_ptr.store(g_rec.get(), std::memory_order_release);
    return g_rec.get();
}

FlightRecorder *
initFlightRecorder(const std::string &path)
{
    std::lock_guard<std::mutex> lock(g_rec_mu);
    g_env_checked = true;
    if (g_rec && g_rec->path() == path)
        return g_rec.get(); // same sweep re-entering (trace= recursion)

    const std::int64_t epoch = epochFromEnvOrNow();
    ::setenv("LBIC_FLIGHT_EPOCH_NS", std::to_string(epoch).c_str(), 1);
    ::setenv("LBIC_FLIGHT_RECORD", path.c_str(), 1);
    g_rec.reset(new FlightRecorder(path, epoch)); // old one flushes
    g_rec_ptr.store(g_rec.get(), std::memory_order_release);
    return g_rec.get();
}

FlightRecorder *
initFlightRecorderForward()
{
    const char *epoch = std::getenv("LBIC_FLIGHT_EPOCH_NS");
    if (!epoch || !*epoch)
        return nullptr;
    std::lock_guard<std::mutex> lock(g_rec_mu);
    g_env_checked = true;
    // A recorder inherited across fork() holds the *parent's* pending
    // events and spill path; flushing it from the child would
    // duplicate them. Abandon it unflushed (a deliberate one-time
    // leak in a process that exists only to run the worker loop).
    (void)g_rec.release();
    g_rec.reset(new FlightRecorder("", toI64(epoch)));
    g_rec_ptr.store(g_rec.get(), std::memory_order_release);
    return g_rec.get();
}

void
shutdownFlightRecorder()
{
    std::lock_guard<std::mutex> lock(g_rec_mu);
    g_rec_ptr.store(nullptr, std::memory_order_release);
    try {
        g_rec.reset();
    } catch (...) {
    }
    g_env_checked = true;
    ::unsetenv("LBIC_FLIGHT_RECORD");
    ::unsetenv("LBIC_FLIGHT_EPOCH_NS");
}

FlightRecord
loadFlightRecord(const std::string &path)
{
    FlightRecord out;
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return out; // missing record == empty flight

    std::string line;
    bool last_ok = true;
    while (std::getline(in, line)) {
        if (line.empty()
            || line.find_first_not_of(" \t\r") == std::string::npos)
            continue;
        SpanEvent ev;
        if (SpanEvent::fromJson(line, ev)) {
            out.events.push_back(std::move(ev));
            last_ok = true;
        } else {
            ++out.malformed;
            last_ok = false;
        }
    }
    out.truncated = !last_ok;
    return out;
}

std::string
verifyFlightRecord(const FlightRecord &rec)
{
    using Key = std::pair<int, std::uint64_t>;
    std::map<Key, const SpanEvent *> spans;
    for (const SpanEvent &ev : rec.events) {
        if (ev.kind != "span")
            continue;
        if (ev.id == 0)
            return "span '" + ev.name + "' has id 0";
        if (!spans.emplace(Key{ev.pid, ev.id}, &ev).second) {
            return "duplicate span id " + std::to_string(ev.id)
                   + " in pid " + std::to_string(ev.pid);
        }
    }

    auto describe = [](const SpanEvent &ev) {
        return ev.cat + "." + ev.name + " id " + std::to_string(ev.id)
               + " pid " + std::to_string(ev.pid)
               + (ev.job.empty() ? "" : " job '" + ev.job + "'");
    };

    // Containment + accumulate each parent's direct-children duration.
    std::map<Key, std::int64_t> child_ns;
    for (const SpanEvent &ev : rec.events) {
        if (ev.kind == "meta")
            continue;
        if (ev.parent == 0)
            continue;
        const auto it = spans.find(Key{ev.pid, ev.parent});
        if (it == spans.end()) {
            return describe(ev) + ": parent "
                   + std::to_string(ev.parent) + " not recorded";
        }
        const SpanEvent &p = *it->second;
        if (ev.ts_ns < p.ts_ns
            || ev.ts_ns + ev.dur_ns > p.ts_ns + p.dur_ns) {
            return describe(ev) + ": escapes parent " + describe(p)
                   + " window";
        }
        if (ev.kind == "span")
            child_ns[Key{ev.pid, ev.parent}] += ev.dur_ns;
    }

    // The sum-exact identity at every span, then telescoped per tree.
    for (const auto &e : spans) {
        const SpanEvent &ev = *e.second;
        if (ev.dur_ns < 0)
            return describe(ev) + ": negative duration";
        if (ev.excl_ns < 0)
            return describe(ev) + ": negative exclusive time";
        const std::int64_t children = child_ns.count(e.first)
                                          ? child_ns.at(e.first)
                                          : 0;
        if (ev.excl_ns + children != ev.dur_ns) {
            return describe(ev) + ": excl " + std::to_string(ev.excl_ns)
                   + " + children " + std::to_string(children)
                   + " != dur " + std::to_string(ev.dur_ns);
        }
    }

    // Telescoping check: sum of exclusive time over each tree must
    // equal the root's inclusive duration byte-exact. (Implied by the
    // per-node identity, but checked independently in the
    // StallAttribution::verify() spirit: trust nothing derived.)
    std::map<Key, Key> root_of;
    auto rootOf = [&](Key k) -> Key {
        std::vector<Key> chain;
        std::size_t steps = 0;
        while (true) {
            const auto memo = root_of.find(k);
            if (memo != root_of.end()) {
                k = memo->second;
                break;
            }
            const SpanEvent &ev = *spans.at(k);
            if (ev.parent == 0)
                break;
            chain.push_back(k);
            k = Key{ev.pid, ev.parent};
            if (++steps > spans.size())
                return Key{-1, 0}; // parent cycle
        }
        for (const Key &c : chain)
            root_of[c] = k;
        return k;
    };
    std::map<Key, std::int64_t> tree_excl;
    for (const auto &e : spans) {
        const Key root = rootOf(e.first);
        if (root.first < 0)
            return "parent cycle involving span id "
                   + std::to_string(e.first.second);
        tree_excl[root] += e.second->excl_ns;
    }
    for (const auto &t : tree_excl) {
        const SpanEvent &root = *spans.at(t.first);
        if (t.second != root.dur_ns) {
            return "tree at " + describe(root) + ": sum(excl) "
                   + std::to_string(t.second) + " != root dur "
                   + std::to_string(root.dur_ns);
        }
    }
    return "";
}

std::size_t
exportChromeTrace(const FlightRecord &rec, std::ostream &os)
{
    os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
    std::size_t n = 0;
    bool first = true;
    auto emit = [&](const std::string &body) {
        os << (first ? "\n" : ",\n") << body;
        first = false;
        ++n;
    };
    auto us = [](std::int64_t ns) {
        char buf[48];
        std::snprintf(buf, sizeof(buf), "%.3f",
                      static_cast<double>(ns) / 1000.0);
        return std::string(buf);
    };
    auto argsJson = [](const SpanEvent &ev, bool remapped) {
        std::string out = "{\"job\":" + quoted(ev.job);
        if (remapped)
            out += ",\"pid\":" + std::to_string(ev.pid);
        for (const auto &a : ev.args)
            out += "," + quoted(a.first) + ":" + quoted(a.second);
        out += "}";
        return out;
    };

    // Track assignment: cat "job" lifecycle spans move to a synthetic
    // "jobs" process with one lane per job label so queued/running/
    // retry read as a per-job swimlane; everything else keeps its
    // real pid/tid.
    constexpr int jobs_pid = 0;
    std::map<std::string, int> job_track;
    std::map<int, bool> pid_is_coord;
    for (const SpanEvent &ev : rec.events) {
        if (ev.cat == "job" && !job_track.count(ev.job))
            job_track[ev.job] = static_cast<int>(job_track.size());
        bool &coord = pid_is_coord[ev.pid];
        coord = coord || ev.kind == "meta" || ev.cat == "job"
                || ev.cat == "store";
    }

    for (const auto &p : pid_is_coord) {
        emit("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":"
             + std::to_string(p.first) + ",\"tid\":0,\"args\":{\"name\":"
             + quoted((p.second ? "coordinator (pid "
                                : "worker (pid ")
                      + std::to_string(p.first) + ")")
             + "}}");
    }
    if (!job_track.empty()) {
        emit("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":"
             + std::to_string(jobs_pid)
             + ",\"tid\":0,\"args\":{\"name\":\"jobs\"}}");
        for (const auto &j : job_track) {
            emit("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":"
                 + std::to_string(jobs_pid) + ",\"tid\":"
                 + std::to_string(j.second) + ",\"args\":{\"name\":"
                 + quoted(j.first) + "}}");
        }
    }

    for (const SpanEvent &ev : rec.events) {
        const bool remapped = ev.cat == "job";
        const int pid = remapped ? jobs_pid : ev.pid;
        const int tid = remapped ? job_track[ev.job] : ev.tid;
        const std::string common =
            "\"cat\":" + quoted(ev.cat) + ",\"name\":" + quoted(ev.name)
            + ",\"pid\":" + std::to_string(pid) + ",\"tid\":"
            + std::to_string(tid) + ",\"ts\":" + us(ev.ts_ns)
            + ",\"args\":" + argsJson(ev, remapped);
        if (ev.kind == "span") {
            emit("{\"ph\":\"X\",\"dur\":" + us(ev.dur_ns) + ","
                 + common + "}");
        } else if (ev.kind == "instant") {
            emit("{\"ph\":\"i\",\"s\":\"t\"," + common + "}");
        } else { // meta: a global instant so the viewer shows it
            emit("{\"ph\":\"i\",\"s\":\"g\"," + common + "}");
        }
    }

    os << "\n]}\n";
    return n;
}

} // namespace observe
} // namespace lbic
