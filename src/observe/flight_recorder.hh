/**
 * @file
 * Sweep flight recorder: one low-overhead span/event stream across
 * every process and layer of a sweep -- coordinator job lifecycle,
 * worker simulation phases, store traffic, thread-pool scheduling --
 * merged onto a single corrected clock and spilled crash-safe as
 * JSONL in the run ledger's flat sorted-key style.
 *
 * Clock model: every event timestamp is CLOCK_MONOTONIC (via
 * std::chrono::steady_clock, which is CLOCK_MONOTONIC on Linux) minus
 * a sweep-wide *epoch* taken once when the coordinating process
 * installs its recorder. The epoch is exported through
 * LBIC_FLIGHT_EPOCH_NS before workers are forked, and the monotonic
 * clock is machine-wide, so coordinator and worker events land on one
 * common timeline with t=0 at sweep start -- no per-fork offset
 * handshake is needed, the env var *is* the clock correction.
 *
 * Transport: the coordinating process runs a *spill-mode* recorder
 * that batches completed events and appends them to the record file
 * with the ledger's single-O_APPEND-write-per-batch primitive
 * (appendTextAtomic), on its own fd -- progress lines on stderr and
 * recorder output can never interleave, and a crash truncates at most
 * the final line. Worker processes run a *forward-mode* recorder
 * (no path): completed events accumulate in memory and are drained
 * with takeBatch() after each job, shipped to the coordinator as an
 * `EVT` frame on the existing lbsw pipe, and ingested verbatim into
 * the coordinator's spill buffer. A worker killed mid-job loses only
 * its own unsent spans; the coordinator's lifecycle spans (with death
 * provenance) survive.
 *
 * Consistency contract (the StallAttribution::verify() style): spans
 * form a forest per (pid, tid, parent links). For every span,
 *
 *   excl_ns + sum(direct children dur_ns) == dur_ns   (byte-exact)
 *   child.ts_ns        >= parent.ts_ns
 *   child end          <= parent end
 *
 * which telescopes: the sum of exclusive time over a span tree equals
 * the root's inclusive duration exactly. verifyFlightRecord() checks
 * all of it; `sweep_inspect --check` and the tests gate on it.
 *
 * Cost model: a disabled recorder is a null pointer -- every
 * instrumentation site guards on flightRecorder() returning null, so
 * the default path costs one predictable branch. Enabled spans are a
 * clock read plus a small mutex-guarded append.
 */

#ifndef LBIC_OBSERVE_FLIGHT_RECORDER_HH
#define LBIC_OBSERVE_FLIGHT_RECORDER_HH

#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace lbic
{
namespace observe
{

class Profiler;

/** Flight record schema; bump on breaking changes. */
constexpr unsigned flight_schema_version = 1;

/**
 * One recorded event: a completed span (kind "span"), a point event
 * (kind "instant") or sweep metadata (kind "meta"). Serialized as one
 * flat JSON object per line, sorted keys; free-form string args are
 * flattened with an "a_" prefix so the line stays nesting-free like
 * the ledger's. Unknown keys parse into args (forward compatibility).
 */
struct SpanEvent
{
    std::uint64_t id = 0;     //!< per-process unique span id (0: none)
    std::uint64_t parent = 0; //!< enclosing span id, same pid (0: root)
    int pid = 0;
    int tid = 0;              //!< small per-process thread index
    std::string kind;         //!< "span" | "instant" | "meta"
    std::string cat;          //!< "job" | "worker" | "store" | "sweep" | "sim"
    std::string name;         //!< phase/event name ("running", "lookup", ...)
    std::string job;          //!< sweep job label, "" when not job-scoped
    std::int64_t ts_ns = 0;   //!< epoch-corrected monotonic start
    std::int64_t dur_ns = 0;  //!< inclusive duration (0 for instants)
    std::int64_t excl_ns = 0; //!< dur_ns minus direct children's dur_ns

    /** Free-form string annotations ("attempt", "signal", ...). */
    std::map<std::string, std::string> args;

    /** Serialize as one flat JSON object (no trailing newline). */
    std::string toJson() const;

    /** Parse one JSONL line; false on malformed input. */
    static bool fromJson(const std::string &line, SpanEvent &out);
};

/**
 * Thread-safe span/event recorder. Construct with a spill path
 * (coordinator side) or an empty path (worker forward mode); prefer
 * the process-wide instance managed by initFlightRecorder() /
 * flightRecorder() so instrumentation sites across layers share one
 * stream.
 */
class FlightRecorder
{
  public:
    /**
     * @param path  JSONL spill destination, or "" for forward mode
     *              (events drained with takeBatch()).
     * @param epoch_ns  raw monotonic nanoseconds of the sweep's t=0;
     *              pass the LBIC_FLIGHT_EPOCH_NS value in children.
     */
    FlightRecorder(std::string path, std::int64_t epoch_ns);

    /** Flushes pending events (spill mode). */
    ~FlightRecorder();

    FlightRecorder(const FlightRecorder &) = delete;
    FlightRecorder &operator=(const FlightRecorder &) = delete;

    /** Epoch-corrected monotonic now, in nanoseconds. */
    std::int64_t now() const;

    std::int64_t epochNs() const { return epoch_ns_; }
    const std::string &path() const { return path_; }

    /**
     * Open a span on the calling thread's scope stack; it becomes a
     * child of the thread's innermost open span. Nothing is emitted
     * until endSpan(). Returns the span id for endSpan().
     */
    std::uint64_t beginSpan(const std::string &cat,
                            const std::string &name,
                            const std::string &job);

    /** Close @p id (innermost open span of this thread) and emit it. */
    void endSpan(std::uint64_t id,
                 const std::map<std::string, std::string> &args = {});

    /**
     * Emit an externally-timed completed leaf span. When
     * @p attach_to_open is true and the calling thread has an open
     * span, the new span becomes its child (and charges its duration
     * against the parent's exclusive time); pass false for top-level
     * lifecycle spans emitted from an event loop, which overlap each
     * other and must stay roots. Returns the emitted span id.
     */
    std::uint64_t
    completeSpan(const std::string &cat, const std::string &name,
                 const std::string &job, std::int64_t ts_ns,
                 std::int64_t dur_ns,
                 const std::map<std::string, std::string> &args = {},
                 bool attach_to_open = true);

    /** Emit a point event at now(). */
    void instant(const std::string &cat, const std::string &name,
                 const std::string &job,
                 const std::map<std::string, std::string> &args = {});

    /** Emit a metadata record (sweep identity for joins). */
    void meta(const std::string &name,
              const std::map<std::string, std::string> &args);

    /**
     * Bridge a stopped Profiler tree into nested spans ending at
     * now(): each profiler node becomes a "sim" span whose exclusive
     * time is the node's self_ns, children laid out back to back from
     * the parent's start so containment and the telescoping identity
     * hold byte-exact (the profiler's own identity guarantees
     * self + children == inclusive). The bridged root attaches to the
     * calling thread's innermost open span.
     */
    void bridgeProfiler(const Profiler &prof, const std::string &job);

    /**
     * Ingest already-serialized JSONL event lines (an EVT frame from
     * a worker) verbatim into the pending buffer.
     */
    void ingest(const std::string &jsonl);

    /** Drain pending serialized lines (forward mode transport). */
    std::string takeBatch();

    /**
     * Spill pending events to the record file as one atomic append
     * (no-op in forward mode or when nothing is pending).
     */
    void flush();

  private:
    struct OpenSpan
    {
        std::uint64_t id = 0;
        std::string cat, name, job;
        std::int64_t ts_ns = 0;
        std::int64_t child_ns = 0; //!< closed direct children's dur
    };

    int tidOfLocked(std::thread::id id);
    void emitLocked(const SpanEvent &ev);
    void maybeSpillLocked();

    std::string path_;
    std::int64_t epoch_ns_ = 0;
    int pid_ = 0;

    mutable std::mutex mu_;
    std::uint64_t next_id_ = 1;
    std::map<std::thread::id, int> tids_;
    std::map<int, std::vector<OpenSpan>> stacks_; //!< per tid
    std::string pending_; //!< serialized JSONL awaiting flush/take
};

/**
 * RAII span with the ScopedPhase null fast path: a null recorder
 * makes construction and destruction pointer tests. The span closes
 * (with any args set) even when the scope unwinds via exception, so
 * the per-thread scope stack never leaks an open span.
 */
class ScopedFlightSpan
{
  public:
    ScopedFlightSpan(FlightRecorder *rec, const std::string &cat,
                     const std::string &name, const std::string &job)
        : rec_(rec), id_(rec ? rec->beginSpan(cat, name, job) : 0)
    {
    }

    ~ScopedFlightSpan()
    {
        if (rec_)
            rec_->endSpan(id_, args_);
    }

    void setArg(const std::string &key, const std::string &value)
    {
        if (rec_)
            args_[key] = value;
    }

    ScopedFlightSpan(const ScopedFlightSpan &) = delete;
    ScopedFlightSpan &operator=(const ScopedFlightSpan &) = delete;

  private:
    FlightRecorder *rec_;
    std::uint64_t id_;
    std::map<std::string, std::string> args_;
};

/**
 * The process-wide recorder, or null when recording is off. First
 * call initializes lazily from the environment: LBIC_FLIGHT_RECORD
 * names a spill path (exported by the coordinating driver so forked
 * children inherit the destination). The null answer is cached, so
 * hot-path guards cost one load after the first call.
 */
FlightRecorder *flightRecorder();

/**
 * Install the process spill recorder at @p path (coordinating driver
 * side), taking the epoch from LBIC_FLIGHT_EPOCH_NS when already set
 * or from the current clock otherwise, and exporting both
 * LBIC_FLIGHT_RECORD and LBIC_FLIGHT_EPOCH_NS so forked/exec'd
 * workers join the same timeline. Replaces any existing recorder
 * (flushing it first). Returns the installed recorder.
 */
FlightRecorder *initFlightRecorder(const std::string &path);

/**
 * Install a forward-mode recorder for a worker process. Called at the
 * top of the worker loop; any recorder state inherited across fork()
 * is abandoned *without flushing* (the parent's buffered events are
 * not ours to spill). Returns the recorder, or null when
 * LBIC_FLIGHT_EPOCH_NS is not set (recording off).
 */
FlightRecorder *initFlightRecorderForward();

/** Flush and drop the process recorder; recording turns off. */
void shutdownFlightRecorder();

/** What loadFlightRecord() found. */
struct FlightRecord
{
    std::vector<SpanEvent> events;

    /** Lines dropped as malformed (a crash-truncated tail is 1). */
    std::size_t malformed = 0;

    /** True when the final line was dropped (torn append). */
    bool truncated = false;
};

/**
 * Read every well-formed event from @p path. Missing file == empty
 * record; malformed lines are counted and skipped, and a malformed
 * final line additionally sets truncated (same contract as
 * loadLedger).
 */
FlightRecord loadFlightRecord(const std::string &path);

/**
 * Check the recorder identities over a loaded record: span ids unique
 * per pid, every referenced parent present and a span, children
 * contained in their parent's [ts, ts+dur] window, exclusive time
 * non-negative, excl + sum(children dur) == dur byte-exact at every
 * span, and sum(excl) over every tree == root dur. Returns "" when
 * all hold, else a description of the first violation.
 */
std::string verifyFlightRecord(const FlightRecord &rec);

/**
 * Export @p rec as a Chrome trace-event JSON document (the PR 2
 * chrome sink conventions: displayTimeUnit ns, ph "X" duration and
 * ph "i" instant events, microsecond timestamps). Coordinator job
 * lifecycle spans (cat "job") are remapped onto a synthetic "jobs"
 * process with one track per job label so each job reads as its own
 * swimlane; all other events keep their real pid/tid. Returns the
 * number of trace events written.
 */
std::size_t exportChromeTrace(const FlightRecord &rec,
                              std::ostream &os);

} // namespace observe
} // namespace lbic

#endif // LBIC_OBSERVE_FLIGHT_RECORDER_HH
