/**
 * @file
 * Persistent run ledger: an append-only JSONL store of every bench
 * run's provenance and headline performance numbers.
 *
 * Every sweep that goes through bench/bench_util.hh appends one line
 * per run to `results/ledger.jsonl` (when configured -- see
 * resolveLedgerPath), giving the repository a queryable history of
 * its own performance: which tree (git_sha) ran which experiment
 * (config_hash, driver, workload, port_spec, seed, insts) how fast
 * (ipc, wall_ms, insts_per_sec). `tools/perf_report` reads it back
 * for trend tables, SHA-to-SHA diffs and CI regression gates, and it
 * is the seed of the ROADMAP's content-addressed result cache: the
 * key tuple is exactly the cache key a result store needs.
 *
 * Record format: one flat JSON object per line, sorted keys, no
 * nesting -- the same dotted-path-friendly shape as
 * StatGroup::printJsonFlat. Unknown keys are preserved by readers
 * (forward compatibility); `schema` is bumped on breaking changes.
 *
 * Crash safety: appendLedger() serializes all lines into one buffer
 * and hands it to the OS as a single O_APPEND write, so concurrent
 * appenders cannot interleave records and a crash can only lose or
 * truncate the *final* line. loadLedger() tolerates exactly that: a
 * malformed or unterminated last line is dropped (and reported via
 * LedgerReadResult::truncated), never propagated as an error, and the
 * next append starts on a fresh line regardless.
 */

#ifndef LBIC_OBSERVE_LEDGER_HH
#define LBIC_OBSERVE_LEDGER_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace lbic
{
namespace observe
{

/** Ledger record schema; bump on breaking changes. */
constexpr unsigned ledger_schema_version = 1;

/** One run's ledger record. */
struct LedgerEntry
{
    unsigned schema = ledger_schema_version;

    /** @{ @name Identity key (the result-cache key tuple) */
    std::string config_hash; //!< FNV-1a over the sweep configuration
    std::string driver;      //!< harness name ("table3_ipc", ...)
    std::string workload;
    std::uint64_t seed = 0;
    std::uint64_t insts = 0; //!< instruction budget of the run
    std::string git_sha;     //!< tree that built the binary
    /** @} */

    std::string label;     //!< sweep label ("swim/lbic:4x2")
    std::string port_spec; //!< port organization
    std::string status;    //!< "ok" or "failed"
    std::string timestamp; //!< ISO-8601 UTC append time

    double ipc = 0.0;
    std::uint64_t instructions = 0; //!< actually committed
    std::uint64_t cycles = 0;
    double wall_ms = 0.0;
    double insts_per_sec = 0.0;
    bool sampled = false;

    /** Keys this reader does not model, preserved verbatim. */
    std::map<std::string, std::string> extra;

    /** Serialize as one flat JSON object (no trailing newline). */
    std::string toJson() const;

    /**
     * Parse one JSONL line. Returns false (leaving @p out partially
     * filled) on malformed input.
     */
    static bool fromJson(const std::string &line, LedgerEntry &out);
};

/** What loadLedger() found. */
struct LedgerReadResult
{
    std::vector<LedgerEntry> entries;

    /** Lines dropped as malformed (a crash-truncated tail is 1). */
    std::size_t malformed = 0;

    /** True when the final line was dropped (torn append). */
    bool truncated = false;
};

/**
 * Append @p entries to the JSONL ledger at @p path as one atomic
 * write, creating the file (but not directories) on demand. A
 * preexisting torn final line is healed first: if the file does not
 * end in a newline, one is prepended to the buffer so the new records
 * always start clean. Throws SimError (Config) when the file cannot
 * be opened or written.
 */
void appendLedger(const std::string &path,
                  const std::vector<LedgerEntry> &entries);

/**
 * Read every well-formed record from @p path. A missing file is an
 * empty ledger, not an error; malformed lines are counted and
 * skipped, and a malformed *final* line additionally sets truncated
 * (the crash-recovery contract).
 */
LedgerReadResult loadLedger(const std::string &path);

/**
 * Append @p text to @p path as one O_APPEND write on a private fd,
 * healing a torn tail first (if the file does not already end in a
 * newline, one is prepended so the torn line stays isolated). This is
 * the crash-safety primitive under both the run ledger and the flight
 * recorder spill: concurrent appenders cannot interleave inside a
 * batch, and a crash can only truncate the final line. Throws
 * SimError (Config) on open/write failure.
 */
void appendTextAtomic(const std::string &path, const std::string &text);

/** Current UTC time as "YYYY-MM-DDTHH:MM:SSZ". */
std::string ledgerTimestamp();

/**
 * Where sweep telemetry should be appended, in priority order:
 *
 *   1. @p knob ("ledger=" on the driver command line): a path, or
 *      "none" to disable, or "auto" (the default) to fall through;
 *   2. the LBIC_LEDGER environment variable, same semantics;
 *   3. "results/ledger.jsonl" when ./results exists in the working
 *      directory (a repo-root invocation), else disabled.
 *
 * Returns the resolved path, or an empty string when disabled.
 */
std::string resolveLedgerPath(const std::string &knob);

} // namespace observe
} // namespace lbic

#endif // LBIC_OBSERVE_LEDGER_HH
