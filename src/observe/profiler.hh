/**
 * @file
 * Host-side hierarchical phase profiler: where simulator *wall time*
 * goes, as opposed to where simulated cycles go (attribution.hh).
 *
 * A Profiler owns a tree of phases. Code marks phases with RAII
 * scopes:
 *
 * @code
 *   observe::Profiler prof;
 *   {
 *       observe::ScopedPhase p(&prof, "detailed");
 *       for (...) {
 *           observe::ScopedPhase c(&prof, "commit");  // nests
 *           commitStage();
 *       }
 *   }
 *   prof.stop();
 *   lbic_assert(prof.verify().empty(), "profiler accounting broken");
 *   prof.report(std::cout);
 * @endcode
 *
 * Accounting is sum-exact in the style of StallAttribution: every
 * enter/exit transition reads the monotonic clock exactly once and
 * charges the elapsed nanoseconds since the previous transition to the
 * phase that was running. A node's self time plus its children's
 * inclusive time therefore telescopes to the node's own inclusive time
 * with byte-exact integer equality, and verify() checks that identity
 * (plus children <= parent and balanced enter/exit) at every node.
 *
 * Cost model: a disabled scope (null Profiler pointer) is a single
 * pointer test -- the tick loop's per-stage scopes are free unless
 * `profile=1` is set. An enabled scope is two clock reads plus a
 * small-vector child lookup, which is why per-cycle stage profiling
 * is opt-in while per-run phases (fast-forward, checkpoint apply,
 * detailed run) are cheap enough to time always.
 *
 * HostCounters complements the tree with per-thread OS-level counters
 * (user/sys CPU, process peak RSS, a hookable allocation counter) so
 * sweep workers can report where a whole job's host resources went.
 */

#ifndef LBIC_OBSERVE_PROFILER_HH
#define LBIC_OBSERVE_PROFILER_HH

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

namespace lbic
{
namespace observe
{

/**
 * Point-in-time host resource counters for the calling thread (CPU
 * times) and process (peak RSS). Subtract two snapshots for a
 * per-phase or per-job delta; max_rss_kb is a high-water mark, not a
 * rate, so deltas of it are meaningless -- report the later sample.
 */
struct HostCounters
{
    double user_ms = 0.0;         //!< thread user CPU time
    double sys_ms = 0.0;          //!< thread system CPU time
    std::uint64_t max_rss_kb = 0; //!< process peak resident set
    std::uint64_t alloc_bytes = 0; //!< this thread's hooked allocations

    HostCounters operator-(const HostCounters &o) const
    {
        HostCounters d;
        d.user_ms = user_ms - o.user_ms;
        d.sys_ms = sys_ms - o.sys_ms;
        d.max_rss_kb = max_rss_kb; // high-water mark: keep the later
        d.alloc_bytes = alloc_bytes - o.alloc_bytes;
        return d;
    }
};

/** Sample the calling thread's CPU times and the process peak RSS. */
HostCounters sampleHostCounters();

/**
 * Thread-local allocation counter, folded into HostCounters. Arena
 * and pool owners that want their footprint visible in telemetry add
 * the bytes they grab from the system here; nothing resets it, so
 * callers diff snapshots like the CPU counters.
 */
std::uint64_t &threadAllocCounter();

/** Hierarchical wall-clock phase profiler (single-threaded). */
class Profiler
{
  public:
    /** One phase in the tree. */
    struct Node
    {
        std::string name;
        Node *parent = nullptr;

        /** Wall nanoseconds inside this phase, children included. */
        std::uint64_t inclusive_ns = 0;

        /** Wall nanoseconds charged to this phase alone. */
        std::uint64_t self_ns = 0;

        /** Completed enter/exit pairs. */
        std::uint64_t calls = 0;

        std::vector<std::unique_ptr<Node>> children;

        /** @{ @name Internal scope state (valid while the phase is open) */
        std::uint64_t open_since_ns = 0;
        bool open = false;
        /** @} */

        /** Sum of the children's inclusive time. */
        std::uint64_t childrenNs() const;

        /** Find a direct child by name (nullptr if absent). */
        const Node *child(const std::string &name) const;
    };

    /** Starts the root ("total") phase at construction. */
    Profiler();

    /**
     * Enter the phase @p name (created under the current phase on
     * first use). Returns a token for exit(); use ScopedPhase instead
     * of calling these directly.
     */
    Node *enter(const char *name);

    /** Exit @p node, which must be the innermost open phase. */
    void exit(Node *node);

    /**
     * Close the root phase. Call once, after the last scope exits and
     * before verify()/report(); further enters are illegal.
     */
    void stop();

    bool stopped() const { return stopped_; }

    const Node &root() const { return root_; }

    /**
     * Check the accounting identities at every node:
     *
     *   self_ns + sum(children inclusive_ns) == inclusive_ns  (exact)
     *   sum(children inclusive_ns)           <= inclusive_ns
     *   no phase still open (stop() called, all scopes exited)
     *
     * Returns an empty string when all hold, or a description of the
     * first violation.
     */
    std::string verify() const;

    /**
     * Human-readable indented tree: per phase the inclusive and self
     * milliseconds, call count and share of the root's total.
     */
    void report(std::ostream &os) const;

    /**
     * One flat JSON object, sorted dotted-path keys: per phase
     * "<path>.ns", "<path>.self_ns" and "<path>.calls" -- the same
     * flat dotted format StatGroup::printJsonFlat and the run ledger
     * use.
     */
    void printJson(std::ostream &os) const;

  private:
    static std::uint64_t nowNs();

    Node root_;
    Node *current_;
    std::uint64_t last_ns_;  //!< previous transition's clock read
    std::uint64_t open_ = 1; //!< open phases including the root
    bool stopped_ = false;
};

/**
 * RAII phase scope. A null profiler makes construction and
 * destruction single pointer tests, so instrumentation sites cost
 * nothing when profiling is off.
 */
class ScopedPhase
{
  public:
    ScopedPhase(Profiler *profiler, const char *name)
        : profiler_(profiler),
          node_(profiler ? profiler->enter(name) : nullptr)
    {
    }

    ~ScopedPhase()
    {
        if (profiler_)
            profiler_->exit(node_);
    }

    ScopedPhase(const ScopedPhase &) = delete;
    ScopedPhase &operator=(const ScopedPhase &) = delete;

  private:
    Profiler *profiler_;
    Profiler::Node *node_;
};

} // namespace observe
} // namespace lbic

#endif // LBIC_OBSERVE_PROFILER_HH
