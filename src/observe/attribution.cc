#include "attribution.hh"

#include "common/logging.hh"

namespace lbic
{
namespace observe
{

const char *
stallCauseName(StallCause cause)
{
    switch (cause) {
      case StallCause::FrontendDrained: return "frontend_drained";
      case StallCause::DataDependency:  return "data_dependency";
      case StallCause::FuBusy:          return "fu_busy";
      case StallCause::ExecLatency:     return "exec_latency";
      case StallCause::CachePortLoad:   return "cache_port_load";
      case StallCause::CachePortStore:  return "cache_port_store";
      case StallCause::MemoryLatency:   return "memory_latency";
      case StallCause::RunLimit:        return "run_limit";
    }
    return "unknown";
}

const char *
stallCauseDesc(StallCause cause)
{
    switch (cause) {
      case StallCause::FrontendDrained:
        return "head blocked: window empty (startup or stream end)";
      case StallCause::DataDependency:
        return "head blocked: waiting on register or store-data "
               "operands";
      case StallCause::FuBusy:
        return "head blocked: ready but unissued (FU or issue width)";
      case StallCause::ExecLatency:
        return "head blocked: non-memory op executing";
      case StallCause::CachePortLoad:
        return "head blocked: load waiting for a cache-port grant";
      case StallCause::CachePortStore:
        return "head blocked: store waiting for a cache write grant";
      case StallCause::MemoryLatency:
        return "head blocked: load access in flight in the hierarchy";
      case StallCause::RunLimit:
        return "commit budget reached mid-cycle (final cycle only)";
    }
    return "";
}

const char *
dispatchCauseName(DispatchCause cause)
{
    switch (cause) {
      case DispatchCause::FrontendDrained: return "frontend_drained";
      case DispatchCause::RuuFull:         return "ruu_full";
      case DispatchCause::LsqFull:         return "lsq_full";
    }
    return "unknown";
}

StallAttribution::StallAttribution(stats::StatGroup *parent,
                                   unsigned fetch_width,
                                   unsigned commit_width)
    : group_(parent, "attribution"),
      fetch_width_(fetch_width), commit_width_(commit_width),
      cycles_base(&group_, "cycles_base",
                  "cycles committing at least one instruction"),
      slots_committed(&group_, "slots_committed",
                      "commit slots filled by retiring instructions"),
      dispatch_used(&group_, "dispatch_used",
                    "dispatch slots filled by new instructions")
{
    lbic_assert(fetch_width_ >= 1 && commit_width_ >= 1,
                "attribution needs nonzero pipeline widths");
    cycle_stack_.reserve(num_stall_causes);
    slot_stack_.reserve(num_stall_causes);
    for (unsigned i = 0; i < num_stall_causes; ++i) {
        const auto cause = static_cast<StallCause>(i);
        cycle_stack_.push_back(std::make_unique<stats::Scalar>(
            &group_, std::string("cycles_") + stallCauseName(cause),
            std::string("zero-commit cycles: ")
                + stallCauseDesc(cause)));
        slot_stack_.push_back(std::make_unique<stats::Scalar>(
            &group_, std::string("slots_") + stallCauseName(cause),
            std::string("unused commit slots: ")
                + stallCauseDesc(cause)));
    }
    dispatch_stack_.reserve(num_dispatch_causes);
    for (unsigned i = 0; i < num_dispatch_causes; ++i) {
        const auto cause = static_cast<DispatchCause>(i);
        dispatch_stack_.push_back(std::make_unique<stats::Scalar>(
            &group_,
            std::string("dispatch_") + dispatchCauseName(cause),
            std::string("unused dispatch slots: ")
                + dispatchCauseName(cause)));
    }
}

std::uint64_t
StallAttribution::cycleStackTotal() const
{
    std::uint64_t total = baseCycles();
    for (unsigned i = 0; i < num_stall_causes; ++i)
        total += stallCycles(static_cast<StallCause>(i));
    return total;
}

std::string
StallAttribution::verify(std::uint64_t cycles) const
{
    const std::uint64_t cycle_total = cycleStackTotal();
    if (cycle_total != cycles)
        return "CPI cycle stack sums to " + std::to_string(cycle_total)
               + " but " + std::to_string(cycles)
               + " cycles were simulated";

    std::uint64_t commit_total = committedSlots();
    for (unsigned i = 0; i < num_stall_causes; ++i)
        commit_total += stallSlots(static_cast<StallCause>(i));
    if (commit_total != cycles * commit_width_)
        return "commit-slot stack sums to "
               + std::to_string(commit_total) + " but "
               + std::to_string(cycles) + " cycles * commit width "
               + std::to_string(commit_width_) + " = "
               + std::to_string(cycles * commit_width_);

    std::uint64_t dispatch_total = usedDispatchSlots();
    for (unsigned i = 0; i < num_dispatch_causes; ++i)
        dispatch_total += dispatchStallSlots(
            static_cast<DispatchCause>(i));
    if (dispatch_total != cycles * fetch_width_)
        return "dispatch-slot stack sums to "
               + std::to_string(dispatch_total) + " but "
               + std::to_string(cycles) + " cycles * fetch width "
               + std::to_string(fetch_width_) + " = "
               + std::to_string(cycles * fetch_width_);

    return {};
}

} // namespace observe
} // namespace lbic
