/**
 * @file
 * Stall attribution: a sum-exact CPI stack for the simulated core.
 *
 * The end-of-run aggregates say *that* a port organization lost IPC;
 * this subsystem says *why*, in the style of top-down CPI stacks
 * (Eyerman et al., "A Performance Counter Architecture for Computing
 * Accurate CPI Components"). Every cycle the core charges its unused
 * dispatch and commit slots to a root cause, and each whole cycle to
 * exactly one cycle-stack component, so three accounting identities
 * hold with byte-exact integer equality at every cycle boundary:
 *
 *   cycles_base + sum(cycles_<cause>)        == cycles
 *   slots_committed + sum(slots_<cause>)     == cycles * commit_width
 *   dispatch_used + sum(dispatch_<cause>)    == cycles * fetch_width
 *
 * The cycle stack uses the standard blame-the-oldest rule: a cycle
 * that commits at least one instruction is a base cycle; a cycle that
 * commits nothing is charged to whatever is blocking the *oldest*
 * instruction (the head of the RUU), because nothing younger can
 * commit before it. The slot stacks refine this: a partially used
 * commit cycle charges its leftover slots to the head's blocker, and
 * the dispatch stack attributes frontend-side loss (RUU full, LSQ
 * full, stream drained) that the commit-side view cannot see.
 *
 * Counters are always on: the accounting is a handful of integer adds
 * per cycle, cheap enough that every run is a self-explaining
 * experiment.
 */

#ifndef LBIC_OBSERVE_ATTRIBUTION_HH
#define LBIC_OBSERVE_ATTRIBUTION_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/statistics.hh"

namespace lbic
{
namespace observe
{

/**
 * Root cause blocking the oldest instruction from committing. Charged
 * to unused commit slots and (when nothing commits) to the cycle.
 */
enum class StallCause : unsigned
{
    /** The window is empty: startup or the workload stream drained. */
    FrontendDrained = 0,

    /** The head waits on register (or forwarded store-data) operands. */
    DataDependency,

    /** The head's operands are ready but it has not issued: its
     *  functional unit is busy or the issue width was exhausted. */
    FuBusy,

    /** The head is a non-memory op in execution (FU latency). */
    ExecLatency,

    /** The head is a load waiting for a cache-port grant. */
    CachePortLoad,

    /** The head is a completed store waiting for a write grant. */
    CachePortStore,

    /** The head is a load whose cache access is in flight (hit or
     *  miss latency in the memory hierarchy). */
    MemoryLatency,

    /** The commit budget (max_insts) was reached mid-cycle; only the
     *  run's final cycle can carry this. */
    RunLimit,
};

constexpr unsigned num_stall_causes = 8;

/** Stable snake_case name used for stats and JSON keys. */
const char *stallCauseName(StallCause cause);

/** One-line description for stat dumps. */
const char *stallCauseDesc(StallCause cause);

/** Root cause for an unused dispatch slot. */
enum class DispatchCause : unsigned
{
    /** The workload stream has ended (or has not produced yet). */
    FrontendDrained = 0,

    /** The RUU window is full. */
    RuuFull,

    /** The next instruction is a memory op and the LSQ is full. */
    LsqFull,
};

constexpr unsigned num_dispatch_causes = 3;

const char *dispatchCauseName(DispatchCause cause);

/**
 * The attribution counters, registered as the "attribution" stat
 * group under the owning core. The core calls commitCycle() and
 * dispatchCycle() exactly once per cycle each; everything else is
 * read-side (accessors, the sum-exactness verifier).
 */
class StallAttribution
{
  public:
    /**
     * @param parent stat group to register the "attribution" group
     *        under (the core's own group).
     * @param fetch_width dispatch slots per cycle.
     * @param commit_width commit slots per cycle.
     */
    StallAttribution(stats::StatGroup *parent, unsigned fetch_width,
                     unsigned commit_width);

    /**
     * Account one cycle of the commit stage: @p committed_slots
     * instructions committed; when fewer than commit_width, the
     * leftover slots -- and, if nothing committed, the cycle itself --
     * are charged to @p cause (ignored on a full cycle).
     */
    void
    commitCycle(unsigned committed_slots, StallCause cause)
    {
        if (committed_slots > 0) {
            ++cycles_base;
            slots_committed += static_cast<double>(committed_slots);
        } else {
            ++*cycle_stack_[static_cast<unsigned>(cause)];
        }
        if (committed_slots < commit_width_) {
            *slot_stack_[static_cast<unsigned>(cause)] +=
                static_cast<double>(commit_width_ - committed_slots);
        }
    }

    /**
     * Account one cycle of the dispatch stage: @p used_slots
     * instructions dispatched; leftover slots are charged to
     * @p cause (ignored on a full cycle).
     */
    void
    dispatchCycle(unsigned used_slots, DispatchCause cause)
    {
        if (used_slots > 0)
            dispatch_used += static_cast<double>(used_slots);
        if (used_slots < fetch_width_) {
            *dispatch_stack_[static_cast<unsigned>(cause)] +=
                static_cast<double>(fetch_width_ - used_slots);
        }
    }

    /** @{ @name Integer read-back (counters only ever hold integers) */
    std::uint64_t baseCycles() const { return u64(cycles_base); }
    std::uint64_t
    stallCycles(StallCause cause) const
    {
        return u64(*cycle_stack_[static_cast<unsigned>(cause)]);
    }
    std::uint64_t committedSlots() const { return u64(slots_committed); }
    std::uint64_t
    stallSlots(StallCause cause) const
    {
        return u64(*slot_stack_[static_cast<unsigned>(cause)]);
    }
    std::uint64_t usedDispatchSlots() const { return u64(dispatch_used); }
    std::uint64_t
    dispatchStallSlots(DispatchCause cause) const
    {
        return u64(*dispatch_stack_[static_cast<unsigned>(cause)]);
    }
    /** @} */

    unsigned fetchWidth() const { return fetch_width_; }
    unsigned commitWidth() const { return commit_width_; }

    /** Sum of the cycle stack including base (must equal cycles). */
    std::uint64_t cycleStackTotal() const;

    /**
     * Check all three sum-exactness identities against @p cycles.
     * Returns an empty string when every component sums exactly, or a
     * description of the first violated identity (the invariant
     * auditor's contract).
     */
    std::string verify(std::uint64_t cycles) const;

  private:
    static std::uint64_t
    u64(const stats::Scalar &s)
    {
        return static_cast<std::uint64_t>(s.value());
    }

    stats::StatGroup group_;
    unsigned fetch_width_;
    unsigned commit_width_;

    std::vector<std::unique_ptr<stats::Scalar>> cycle_stack_;
    std::vector<std::unique_ptr<stats::Scalar>> slot_stack_;
    std::vector<std::unique_ptr<stats::Scalar>> dispatch_stack_;

  public:
    /** @{ @name Statistics (public for Derived formulas and tests) */
    stats::Scalar cycles_base;      //!< cycles committing >= 1 inst
    stats::Scalar slots_committed;  //!< commit slots used
    stats::Scalar dispatch_used;    //!< dispatch slots used
    /** @} */
};

} // namespace observe
} // namespace lbic

#endif // LBIC_OBSERVE_ATTRIBUTION_HH
