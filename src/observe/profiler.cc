#include "profiler.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>

#include "common/logging.hh"

#if defined(__linux__) || defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#define LBIC_HAVE_RUSAGE 1
#endif

namespace lbic
{
namespace observe
{

namespace
{

double
timevalMs(const struct timeval &tv)
{
    return static_cast<double>(tv.tv_sec) * 1e3
           + static_cast<double>(tv.tv_usec) / 1e3;
}

/**
 * Process peak RSS in KiB. Linux exposes the high-water mark in
 * /proc/self/status (VmHWM); elsewhere fall back to getrusage's
 * ru_maxrss (KiB on Linux, bytes on macOS -- normalized below).
 */
std::uint64_t
peakRssKb()
{
#if defined(__linux__)
    std::ifstream status("/proc/self/status");
    std::string line;
    while (std::getline(status, line)) {
        if (line.rfind("VmHWM:", 0) == 0) {
            std::uint64_t kb = 0;
            if (std::sscanf(line.c_str(), "VmHWM: %llu",
                            reinterpret_cast<unsigned long long *>(&kb))
                == 1)
                return kb;
        }
    }
#endif
#ifdef LBIC_HAVE_RUSAGE
    struct rusage ru{};
    if (getrusage(RUSAGE_SELF, &ru) == 0) {
#if defined(__APPLE__)
        return static_cast<std::uint64_t>(ru.ru_maxrss) / 1024;
#else
        return static_cast<std::uint64_t>(ru.ru_maxrss);
#endif
    }
#endif
    return 0;
}

} // anonymous namespace

HostCounters
sampleHostCounters()
{
    HostCounters hc;
#ifdef LBIC_HAVE_RUSAGE
#if defined(RUSAGE_THREAD)
    struct rusage ru{};
    if (getrusage(RUSAGE_THREAD, &ru) == 0) {
#else
    struct rusage ru{};
    if (getrusage(RUSAGE_SELF, &ru) == 0) {
#endif
        hc.user_ms = timevalMs(ru.ru_utime);
        hc.sys_ms = timevalMs(ru.ru_stime);
    }
#endif
    hc.max_rss_kb = peakRssKb();
    hc.alloc_bytes = threadAllocCounter();
    return hc;
}

std::uint64_t &
threadAllocCounter()
{
    thread_local std::uint64_t counter = 0;
    return counter;
}

std::uint64_t
Profiler::Node::childrenNs() const
{
    std::uint64_t sum = 0;
    for (const auto &c : children)
        sum += c->inclusive_ns;
    return sum;
}

const Profiler::Node *
Profiler::Node::child(const std::string &name) const
{
    for (const auto &c : children) {
        if (c->name == name)
            return c.get();
    }
    return nullptr;
}

std::uint64_t
Profiler::nowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

Profiler::Profiler()
{
    root_.name = "total";
    root_.open = true;
    last_ns_ = root_.open_since_ns = nowNs();
    current_ = &root_;
}

Profiler::Node *
Profiler::enter(const char *name)
{
    lbic_assert(!stopped_, "Profiler::enter after stop()");
    // One clock read per transition, shared between the outgoing
    // phase's self charge and the incoming phase's window start --
    // this is what makes the verify() identity byte-exact.
    const std::uint64_t now = nowNs();
    current_->self_ns += now - last_ns_;
    last_ns_ = now;

    Node *child = nullptr;
    for (const auto &c : current_->children) {
        if (c->name == name) {
            child = c.get();
            break;
        }
    }
    if (!child) {
        current_->children.push_back(std::make_unique<Node>());
        child = current_->children.back().get();
        child->name = name;
        child->parent = current_;
    }
    lbic_assert(!child->open, "phase '", child->name,
                "' re-entered while open (recursion is not supported)");
    child->open = true;
    child->open_since_ns = now;
    current_ = child;
    ++open_;
    return child;
}

void
Profiler::exit(Node *node)
{
    lbic_assert(node == current_,
                "phase exit out of order: exiting '", node->name,
                "' but '", current_->name, "' is innermost");
    const std::uint64_t now = nowNs();
    node->self_ns += now - last_ns_;
    last_ns_ = now;
    node->inclusive_ns += now - node->open_since_ns;
    node->open = false;
    ++node->calls;
    current_ = node->parent;
    --open_;
}

void
Profiler::stop()
{
    if (stopped_)
        return;
    lbic_assert(current_ == &root_,
                "Profiler::stop with phase '", current_->name,
                "' still open");
    const std::uint64_t now = nowNs();
    root_.self_ns += now - last_ns_;
    last_ns_ = now;
    root_.inclusive_ns += now - root_.open_since_ns;
    root_.open = false;
    ++root_.calls;
    open_ = 0;
    stopped_ = true;
}

namespace
{

std::string
verifyNode(const Profiler::Node &node, const std::string &path)
{
    if (node.open)
        return "phase '" + path + "' is still open";
    const std::uint64_t children = node.childrenNs();
    if (children > node.inclusive_ns) {
        return "phase '" + path + "': children sum "
               + std::to_string(children) + " ns exceeds inclusive "
               + std::to_string(node.inclusive_ns) + " ns";
    }
    if (node.self_ns + children != node.inclusive_ns) {
        return "phase '" + path + "': self " + std::to_string(node.self_ns)
               + " + children " + std::to_string(children)
               + " != inclusive " + std::to_string(node.inclusive_ns)
               + " ns";
    }
    for (const auto &c : node.children) {
        const std::string err = verifyNode(*c, path + "." + c->name);
        if (!err.empty())
            return err;
    }
    return "";
}

std::vector<const Profiler::Node *>
sortedChildren(const Profiler::Node &node)
{
    std::vector<const Profiler::Node *> out;
    out.reserve(node.children.size());
    for (const auto &c : node.children)
        out.push_back(c.get());
    std::sort(out.begin(), out.end(),
              [](const Profiler::Node *a, const Profiler::Node *b) {
                  return a->name < b->name;
              });
    return out;
}

void
reportNode(std::ostream &os, const Profiler::Node &node,
           std::uint64_t total_ns, unsigned depth)
{
    const double ms = static_cast<double>(node.inclusive_ns) / 1e6;
    const double self_ms = static_cast<double>(node.self_ns) / 1e6;
    const double pct = total_ns
        ? 100.0 * static_cast<double>(node.inclusive_ns)
              / static_cast<double>(total_ns)
        : 0.0;
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%*s%-*s %10.3f ms %6.1f%%  self %10.3f ms  x%llu\n",
                  static_cast<int>(2 * depth), "",
                  static_cast<int>(24 - std::min(2 * depth, 22u)),
                  node.name.c_str(), ms, pct, self_ms,
                  static_cast<unsigned long long>(node.calls));
    os << buf;
    for (const Profiler::Node *c : sortedChildren(node))
        reportNode(os, *c, total_ns, depth + 1);
}

void
jsonNode(std::ostream &os, const Profiler::Node &node,
         const std::string &path, bool &first)
{
    os << (first ? "" : ",") << "\"" << path
       << ".ns\":" << node.inclusive_ns << ",\"" << path
       << ".self_ns\":" << node.self_ns << ",\"" << path
       << ".calls\":" << node.calls;
    first = false;
    for (const Profiler::Node *c : sortedChildren(node))
        jsonNode(os, *c, path + "." + c->name, first);
}

} // anonymous namespace

std::string
Profiler::verify() const
{
    if (!stopped_)
        return "Profiler::verify before stop()";
    if (open_ != 0)
        return std::to_string(open_) + " phases still open";
    return verifyNode(root_, root_.name);
}

void
Profiler::report(std::ostream &os) const
{
    reportNode(os, root_, root_.inclusive_ns, 0);
}

void
Profiler::printJson(std::ostream &os) const
{
    os << '{';
    bool first = true;
    jsonNode(os, root_, root_.name, first);
    os << '}';
}

} // namespace observe
} // namespace lbic
