#include "kernel.hh"

namespace lbic
{

KernelWorkload::KernelWorkload(std::string name, std::uint64_t seed)
    : rng(seed), name_(std::move(name)), seed_(seed)
{
}

bool
KernelWorkload::next(DynInst &inst)
{
    if (!initialized_) {
        init();
        initialized_ = true;
    }
    // step() must make forward progress; guard against a kernel that
    // emits nothing (that would be a simulator bug, not user error).
    unsigned guard = 0;
    while (emit.pending() == 0) {
        step();
        lbic_assert(++guard < 1024,
                    "kernel '", name_, "' step() emitted no instructions");
    }
    inst = emit.pop();
    return true;
}

void
KernelWorkload::reset()
{
    emit.clear();
    rng = Random(seed_);
    initialized_ = false;
}

} // namespace lbic
