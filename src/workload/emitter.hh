/**
 * @file
 * Instruction emitter used by workload kernels.
 *
 * Kernels describe one algorithmic step at a time by calling emit
 * helpers (load, store, intAlu, fpAdd, ...). Each helper appends a
 * DynInst to a pending queue and returns the SSA register holding the
 * result, which later emissions can name as a dependence. The queue is
 * drained by Workload::next().
 */

#ifndef LBIC_WORKLOAD_EMITTER_HH
#define LBIC_WORKLOAD_EMITTER_HH

#include <deque>

#include "common/logging.hh"
#include "common/types.hh"
#include "isa/dyn_inst.hh"

namespace lbic
{

/** Builds DynInst records into a pending queue. */
class Emitter
{
  public:
    Emitter() = default;

    /** Number of queued, not-yet-consumed instructions. */
    std::size_t pending() const { return queue_.size(); }

    /** Pop the oldest queued instruction. Queue must be non-empty. */
    DynInst
    pop()
    {
        lbic_assert(!queue_.empty(), "Emitter::pop on empty queue");
        DynInst inst = queue_.front();
        queue_.pop_front();
        return inst;
    }

    /** Discard queued instructions and restart SSA numbering. */
    void
    clear()
    {
        queue_.clear();
        next_reg_ = 0;
    }

    /**
     * Emit a load of @p size bytes at @p addr.
     *
     * @param addr effective byte address.
     * @param size access size in bytes.
     * @param d0,d1 optional register dependences (address operands).
     * @return the SSA register receiving the loaded value.
     */
    RegId
    load(Addr addr, unsigned size = 8, RegId d0 = invalid_reg,
         RegId d1 = invalid_reg)
    {
        DynInst i;
        i.op = OpClass::Load;
        i.dst = allocReg();
        i.src = {d0, d1};
        i.addr = addr;
        i.size = static_cast<std::uint8_t>(size);
        queue_.push_back(i);
        return i.dst;
    }

    /**
     * Emit a store of @p size bytes at @p addr.
     *
     * The two dependence slots have distinct meanings for the LSQ:
     * src[0] is the *address* operand (until it resolves, younger
     * loads cannot bypass this store) and src[1] is the *data*
     * operand (the store cannot retire, nor forward to a matching
     * load, until it resolves).
     *
     * @param addr_dep register the effective address depends on.
     * @param data_dep register holding the value being stored.
     */
    void
    store(Addr addr, unsigned size = 8, RegId addr_dep = invalid_reg,
          RegId data_dep = invalid_reg)
    {
        DynInst i;
        i.op = OpClass::Store;
        i.src = {addr_dep, data_dep};
        i.addr = addr;
        i.size = static_cast<std::uint8_t>(size);
        queue_.push_back(i);
    }

    /** Emit a non-memory operation of class @p c; returns its result. */
    RegId
    op(OpClass c, RegId s0 = invalid_reg, RegId s1 = invalid_reg)
    {
        lbic_assert(!isMemOp(c), "use load()/store() for memory ops");
        DynInst i;
        i.op = c;
        i.dst = c == OpClass::Branch || c == OpClass::Nop
                    ? invalid_reg : allocReg();
        i.src = {s0, s1};
        queue_.push_back(i);
        return i.dst;
    }

    RegId intAlu(RegId s0 = invalid_reg, RegId s1 = invalid_reg)
    { return op(OpClass::IntAlu, s0, s1); }

    RegId intMult(RegId s0 = invalid_reg, RegId s1 = invalid_reg)
    { return op(OpClass::IntMult, s0, s1); }

    RegId intDiv(RegId s0 = invalid_reg, RegId s1 = invalid_reg)
    { return op(OpClass::IntDiv, s0, s1); }

    RegId fpAdd(RegId s0 = invalid_reg, RegId s1 = invalid_reg)
    { return op(OpClass::FpAdd, s0, s1); }

    RegId fpMult(RegId s0 = invalid_reg, RegId s1 = invalid_reg)
    { return op(OpClass::FpMult, s0, s1); }

    RegId fpDiv(RegId s0 = invalid_reg, RegId s1 = invalid_reg)
    { return op(OpClass::FpDiv, s0, s1); }

    /** Emit a (perfectly predicted) branch depending on @p s0. */
    void branch(RegId s0 = invalid_reg) { op(OpClass::Branch, s0); }

    void nop() { op(OpClass::Nop); }

  private:
    RegId allocReg() { return next_reg_++; }

    std::deque<DynInst> queue_;
    RegId next_reg_ = 0;
};

} // namespace lbic

#endif // LBIC_WORKLOAD_EMITTER_HH
