/**
 * @file
 * Binary trace serialization for dynamic instruction streams.
 *
 * A trace lets a workload's stream be captured once and replayed many
 * times (offline analysis, regression tests, cross-config runs over
 * the identical reference stream). The format is a fixed magic/version
 * header followed by packed records.
 */

#ifndef LBIC_WORKLOAD_TRACE_HH
#define LBIC_WORKLOAD_TRACE_HH

#include <cstdint>
#include <istream>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "workload/workload.hh"

namespace lbic
{

/**
 * On-disk sizes of the v1 format: an 8-byte magic/version header
 * followed by fixed-size records (trace.cc static_asserts the record
 * size against the actual packed layout). Exposed so callers can
 * size-check a trace file without decoding it.
 */
constexpr std::uint64_t trace_header_bytes = 8;
constexpr std::uint64_t trace_record_bytes = 24;

/** Writes DynInst records to a binary stream. */
class TraceWriter
{
  public:
    /** @param os destination stream; the header is written eagerly. */
    explicit TraceWriter(std::ostream &os);

    /** Append one instruction record. */
    void write(const DynInst &inst);

    /** Number of records written so far. */
    std::uint64_t count() const { return count_; }

    /**
     * Capture @p n instructions from @p src into @p os.
     * @return the number actually captured (less than @p n only if the
     *         source stream ends).
     */
    static std::uint64_t capture(Workload &src, std::ostream &os,
                                 std::uint64_t n);

  private:
    std::ostream &os_;
    std::uint64_t count_ = 0;
};

/**
 * A Workload that replays a previously captured binary trace.
 *
 * The whole trace is loaded into memory at construction so replay
 * (and reset) is cheap.
 */
class TraceReplayWorkload : public Workload
{
  public:
    /**
     * @param is source stream, fully consumed.
     * @throws SimError (Config) on malformed input: a truncated
     *         header, bad magic, an unsupported (future) version, a
     *         record cut short by truncation, or a record holding an
     *         out-of-range op class. The message names the problem
     *         and the offending record.
     */
    explicit TraceReplayWorkload(std::istream &is);

    const std::string &name() const override { return name_; }
    bool next(DynInst &inst) override;
    void reset() override { pos_ = 0; }

    std::size_t
    peekSpan(const DynInst *&span) override
    {
        span = insts_.data() + pos_;
        return insts_.size() - pos_;
    }

    void advanceSpan(std::size_t n) override { pos_ += n; }

    std::size_t size() const { return insts_.size(); }

  private:
    std::string name_ = "trace";
    std::vector<DynInst> insts_;
    std::size_t pos_ = 0;
};

/**
 * A Workload replaying a shared, immutable in-memory instruction
 * segment. Unlike TraceReplayWorkload it owns nothing: many replays
 * (e.g. every port organization's job for one sampled interval) share
 * one recorded vector. reset() rewinds to the segment start, not the
 * original stream's beginning -- the segment stands in for a stream
 * already positioned at its first instruction.
 */
class SegmentReplayWorkload : public Workload
{
  public:
    /**
     * @param name reported workload name (the original stream's).
     * @param segment shared recorded instructions; must stay alive
     *        and unchanged for this object's lifetime.
     */
    SegmentReplayWorkload(
        std::string name,
        std::shared_ptr<const std::vector<DynInst>> segment)
        : name_(std::move(name)), segment_(std::move(segment))
    {
    }

    const std::string &name() const override { return name_; }

    bool
    next(DynInst &inst) override
    {
        if (pos_ >= segment_->size())
            return false;
        inst = (*segment_)[pos_++];
        return true;
    }

    void reset() override { pos_ = 0; }

    std::size_t
    peekSpan(const DynInst *&span) override
    {
        span = segment_->data() + pos_;
        return segment_->size() - pos_;
    }

    void advanceSpan(std::size_t n) override { pos_ += n; }

  private:
    std::string name_;
    std::shared_ptr<const std::vector<DynInst>> segment_;
    std::size_t pos_ = 0;
};

} // namespace lbic

#endif // LBIC_WORKLOAD_TRACE_HH
