/**
 * @file
 * File-backed trace replay: decode a binary trace once, share the
 * decoded records process-wide, and replay them as a Workload.
 *
 * TraceReplayWorkload (trace.hh) owns a private copy of the decoded
 * stream -- fine for one-off replays, wasteful for a sweep where every
 * (workload, organization) job replays the same file. ReplayWorkload
 * instead borrows an immutable shared vector from a process-wide
 * cache keyed by path, so a 10M-instruction trace is decoded once per
 * process no matter how many jobs replay it, and exposes the records
 * through the Workload span API so the core's fast-forward and the
 * fetch stage can scan them without a virtual call per instruction.
 */

#ifndef LBIC_WORKLOAD_REPLAY_HH
#define LBIC_WORKLOAD_REPLAY_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "workload/workload.hh"

namespace lbic
{

/**
 * Load a binary trace file (the trace.hh v1 format) into an immutable
 * shared record vector. Results are cached process-wide by path: the
 * second and later loads of the same file return the cached vector
 * without touching the filesystem.
 *
 * @throws SimError (Config) if the file cannot be opened or is
 *         malformed (same diagnostics as TraceReplayWorkload).
 */
std::shared_ptr<const std::vector<DynInst>>
loadTraceFile(const std::string &path);

/**
 * Drop every cached trace (test hook: lets a test overwrite a trace
 * file and observe the new contents).
 */
void dropTraceCache();

/**
 * Capture @p n instructions of workload @p name at @p seed into a
 * binary trace at @p path.
 *
 * @return the number of records written (less than @p n only if the
 *         generator stream ends early).
 * @throws SimError (Config) if the file cannot be written.
 */
std::uint64_t writeTraceFile(const std::string &path,
                             const std::string &name,
                             std::uint64_t seed, std::uint64_t n);

/**
 * Make sure @p path holds a trace of at least @p n records for
 * (@p name, @p seed), regenerating it if missing or too short. Used by
 * the bench drivers' trace= knob to pre-generate once per sweep.
 *
 * @return the number of records in the (possibly regenerated) file.
 */
std::uint64_t ensureTraceFile(const std::string &path,
                              const std::string &name,
                              std::uint64_t seed, std::uint64_t n);

/**
 * A Workload replaying a shared decoded trace.
 *
 * The display name is the caller's choice: the Simulator passes the
 * original kernel name so stats output is indistinguishable from
 * generator mode; the registry's "trace:<path>" spec passes the spec
 * itself so name() round-trips through makeWorkload (which is what
 * the golden checker uses to build its shadow stream).
 */
class ReplayWorkload : public Workload
{
  public:
    ReplayWorkload(std::string name,
                   std::shared_ptr<const std::vector<DynInst>> insts)
        : name_(std::move(name)), insts_(std::move(insts))
    {
    }

    /** Convenience: load @p path through the process-wide cache. */
    ReplayWorkload(std::string name, const std::string &path)
        : name_(std::move(name)), insts_(loadTraceFile(path))
    {
    }

    const std::string &name() const override { return name_; }

    bool
    next(DynInst &inst) override
    {
        if (pos_ >= insts_->size())
            return false;
        inst = (*insts_)[pos_++];
        return true;
    }

    void reset() override { pos_ = 0; }

    std::size_t
    peekSpan(const DynInst *&span) override
    {
        span = insts_->data() + pos_;
        return insts_->size() - pos_;
    }

    void advanceSpan(std::size_t n) override { pos_ += n; }

    std::size_t size() const { return insts_->size(); }

  private:
    std::string name_;
    std::shared_ptr<const std::vector<DynInst>> insts_;
    std::size_t pos_ = 0;
};

} // namespace lbic

#endif // LBIC_WORKLOAD_REPLAY_HH
