/**
 * @file
 * The workload interface: a producer of dynamic instructions.
 *
 * A Workload stands in for a benchmark binary running on the simulated
 * processor. The fetch stage pulls DynInst records from it in program
 * order. Register identifiers are SSA-like: each RegId is written by
 * exactly one instruction in the stream, so the core can resolve
 * dependences by looking up the (unique) producer of each source.
 *
 * Workloads must be deterministic: after reset(), the same sequence of
 * instructions is produced again.
 */

#ifndef LBIC_WORKLOAD_WORKLOAD_HH
#define LBIC_WORKLOAD_WORKLOAD_HH

#include <cstddef>
#include <string>

#include "isa/dyn_inst.hh"

namespace lbic
{

/** Abstract producer of a dynamic instruction stream. */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Short identifying name (e.g.\ "compress"). */
    virtual const std::string &name() const = 0;

    /**
     * Produce the next instruction in program order.
     *
     * @param inst filled in on success. The seq field is left to the
     *             fetch stage.
     * @return false when the stream is exhausted (kernel workloads
     *         never exhaust; trace replays do).
     */
    virtual bool next(DynInst &inst) = 0;

    /** Restart the stream from the beginning, deterministically. */
    virtual void reset() = 0;

    /**
     * Bulk view for replay-style sources: expose the remaining run of
     * contiguous, already-materialized records without consuming them.
     * Generator workloads return 0 (no view) and callers fall back to
     * next(); replay workloads return the remaining span. Callers then
     * consume a prefix with advanceSpan(). Used by the functional
     * fast-forward path to scan records without a virtual call per
     * instruction.
     *
     * @param span set to the first unconsumed record, or nullptr.
     * @return number of records readable through @p span.
     */
    virtual std::size_t
    peekSpan(const DynInst *&span)
    {
        span = nullptr;
        return 0;
    }

    /**
     * Consume @p n records of the span returned by peekSpan(). Only
     * valid after a peekSpan() that returned at least @p n.
     */
    virtual void advanceSpan(std::size_t n) { (void)n; }
};

} // namespace lbic

#endif // LBIC_WORKLOAD_WORKLOAD_HH
