/**
 * @file
 * The workload interface: a producer of dynamic instructions.
 *
 * A Workload stands in for a benchmark binary running on the simulated
 * processor. The fetch stage pulls DynInst records from it in program
 * order. Register identifiers are SSA-like: each RegId is written by
 * exactly one instruction in the stream, so the core can resolve
 * dependences by looking up the (unique) producer of each source.
 *
 * Workloads must be deterministic: after reset(), the same sequence of
 * instructions is produced again.
 */

#ifndef LBIC_WORKLOAD_WORKLOAD_HH
#define LBIC_WORKLOAD_WORKLOAD_HH

#include <string>

#include "isa/dyn_inst.hh"

namespace lbic
{

/** Abstract producer of a dynamic instruction stream. */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Short identifying name (e.g.\ "compress"). */
    virtual const std::string &name() const = 0;

    /**
     * Produce the next instruction in program order.
     *
     * @param inst filled in on success. The seq field is left to the
     *             fetch stage.
     * @return false when the stream is exhausted (kernel workloads
     *         never exhaust; trace replays do).
     */
    virtual bool next(DynInst &inst) = 0;

    /** Restart the stream from the beginning, deterministically. */
    virtual void reset() = 0;
};

} // namespace lbic

#endif // LBIC_WORKLOAD_WORKLOAD_HH
