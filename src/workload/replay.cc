#include "replay.hh"

#include <fstream>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "common/sim_error.hh"
#include "workload/registry.hh"
#include "workload/trace.hh"

namespace lbic
{

namespace
{

std::mutex cache_mutex;
std::unordered_map<std::string,
                   std::shared_ptr<const std::vector<DynInst>>>
    trace_cache;

} // anonymous namespace

std::shared_ptr<const std::vector<DynInst>>
loadTraceFile(const std::string &path)
{
    {
        std::lock_guard<std::mutex> lock(cache_mutex);
        auto it = trace_cache.find(path);
        if (it != trace_cache.end())
            return it->second;
    }

    // Decode outside the lock: a multi-threaded sweep decoding two
    // different traces should not serialize. Two threads racing on the
    // same path decode twice and the second insert wins -- wasteful
    // but correct, and in practice the bench drivers pre-load traces
    // before spawning workers.
    std::ifstream is(path, std::ios::binary);
    if (!is)
        throw SimError(SimErrorKind::Config,
                       "cannot open trace file '" + path + "'");
    TraceReplayWorkload decoded(is);

    std::vector<DynInst> insts;
    insts.reserve(decoded.size());
    DynInst inst;
    while (decoded.next(inst))
        insts.push_back(inst);
    auto shared = std::make_shared<const std::vector<DynInst>>(
        std::move(insts));

    std::lock_guard<std::mutex> lock(cache_mutex);
    trace_cache[path] = shared;
    return shared;
}

void
dropTraceCache()
{
    std::lock_guard<std::mutex> lock(cache_mutex);
    trace_cache.clear();
}

std::uint64_t
writeTraceFile(const std::string &path, const std::string &name,
               std::uint64_t seed, std::uint64_t n)
{
    const auto workload = makeWorkload(name, seed);
    std::ofstream os(path, std::ios::binary);
    if (!os)
        throw SimError(SimErrorKind::Config,
                       "cannot open trace file '" + path
                           + "' for writing");
    const std::uint64_t written =
        TraceWriter::capture(*workload, os, n);
    os.flush();
    if (!os)
        throw SimError(SimErrorKind::Config,
                       "write to trace file '" + path + "' failed");
    // The old decoded contents (if any) are stale now.
    std::lock_guard<std::mutex> lock(cache_mutex);
    trace_cache.erase(path);
    return written;
}

std::uint64_t
ensureTraceFile(const std::string &path, const std::string &name,
                std::uint64_t seed, std::uint64_t n)
{
    {
        std::ifstream is(path, std::ios::binary);
        if (is) {
            // Sized check without decoding: header + fixed records.
            is.seekg(0, std::ios::end);
            const auto bytes = static_cast<std::uint64_t>(is.tellg());
            const std::uint64_t have =
                bytes >= trace_header_bytes
                    ? (bytes - trace_header_bytes) / trace_record_bytes
                    : 0;
            if (have >= n)
                return have;
        }
    }
    return writeTraceFile(path, name, seed, n);
}

} // namespace lbic
