/**
 * @file
 * LZW compression kernel (stands in for SPEC95 129.compress).
 */

#include "workload/kernels.hh"

namespace lbic
{

CompressKernel::CompressKernel(std::uint64_t seed)
    : KernelWorkload("compress", seed)
{
}

void
CompressKernel::init()
{
    // Layout: input text, compressed output, open hash table of
    // (prefix, char) -> code, and the parallel code table.
    input_base_ = heap_base;
    output_base_ = input_base_ + (1u << 20);
    htab_base_ = output_base_ + (1u << 20);
    // The code table uses full 8-byte entries and sits half a cache
    // beyond the hash table: the two hot regions drift at the same
    // rate and always occupy disjoint halves of the direct-mapped L1.
    codetab_base_ = htab_base_ + Addr{hash_size} * 8 + 16 * 1024;

    htab_.assign(hash_size, 0);
    in_pos_ = 0;
    out_pos_ = 0;
    entry_ = 0;
    free_code_ = 257;
    hot_base_ = 0;
    entry_reg_ = invalid_reg;
}

void
CompressKernel::step()
{
    // --- Read the next input byte (sequential scan). -----------------
    const RegId byte = emit.load(input_base_ + (in_pos_ % (1u << 20)), 1);
    ++in_pos_;

    // --- Hash (entry, byte) like compress's fcode hash. The running
    // prefix code (entry_) is the loop-carried dependence that bounds
    // compress's ILP: each iteration's hash needs the previous
    // iteration's code.
    RegId h = emit.intAlu(byte, entry_reg_);  // fcode = byte<<16 | ent
    h = emit.intAlu(h, byte);                 // i ^= fcode >> hash_bits

    // The modelled probe index: common prefixes concentrate probes in
    // a hot region of recently used codes that drifts slowly through
    // the table; occasionally a rare string lands anywhere.
    std::uint32_t probe;
    if (rng.chance(0.97)) {
        probe = (hot_base_ + static_cast<std::uint32_t>(rng.below(2048)))
                % hash_size;
    } else {
        probe = static_cast<std::uint32_t>(rng.below(hash_size));
    }
    if ((in_pos_ & 63) == 0)
        hot_base_ = (hot_base_ + 1) % hash_size;

    // --- Probe the hash table. ---------------------------------------
    const RegId probed = emit.load(htab_base_ + Addr{probe} * 8, 8, h);
    const RegId cmp = emit.intAlu(probed, byte);
    emit.branch(cmp);

    if (rng.chance(0.42)) {
        // Hit: the (prefix, char) string already has a code; the new
        // prefix is the value the probe produced.
        htab_[probe] = free_code_;
        emit.intAlu(cmp);
        entry_reg_ = h;                      // ent = codetab[i]
    } else {
        // Secondary probe on a nearby displaced slot, some of the
        // time (a small displacement keeps it in the hot region; a
        // large power-of-two one would alias with the primary probe
        // in the direct-mapped cache).
        if (rng.chance(0.3)) {
            const std::uint32_t p2 = (probe + 61) % hash_size;
            const RegId probed2 =
                emit.load(htab_base_ + Addr{p2} * 8, 8, h);
            emit.intAlu(probed2, byte);
            emit.branch(probed2);
        }
        // Miss: insert the new string (the htab store lands on the
        // line the probe just touched), then emit the current code.
        const RegId code = emit.intAlu(probed);
        emit.store(htab_base_ + Addr{probe} * 8, 8, h, code);
        emit.store(codetab_base_ + Addr{probe} * 8, 8, h, code);
        emit.store(output_base_ + (out_pos_ % (1u << 20)), 2,
                   invalid_reg, code);
        out_pos_ += 2;

        htab_[probe] = free_code_;
        free_code_ = free_code_ >= hash_size - 1 ? 257 : free_code_ + 1;
        entry_reg_ = emit.intAlu(byte, entry_reg_);  // ent, free_ent++
    }

    // Loop bookkeeping.
    emit.branch();
}

} // namespace lbic
