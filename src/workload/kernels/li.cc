/**
 * @file
 * Lisp-interpreter kernel (stands in for SPEC95 130.li).
 */

#include "workload/kernels.hh"

namespace lbic
{

LiKernel::LiKernel(std::uint64_t seed)
    : KernelWorkload("li", seed)
{
}

void
LiKernel::init()
{
    pool_base_ = heap_base;

    // All cells start on the free list, threaded in order; freed cells
    // are pushed back on the front, so allocation reuses a small,
    // cache-resident working set (li's miss rate is nearly zero).
    cdr_.assign(pool_cells, 0);
    for (std::uint32_t i = 0; i < pool_cells; ++i)
        cdr_[i] = i + 1 < pool_cells ? i + 1 : 0;
    free_head_ = 0;
    list_head_ = 0;
    list_len_ = 0;
    cursor_ = 0;
}

void
LiKernel::step()
{
    const auto cell_addr = [this](std::uint32_t c) {
        return pool_base_ + Addr{c} * cell_bytes;
    };

    if (list_len_ < 256 || rng.chance(0.55)) {
        // cons: pop a cell from the free list and build a node --
        // three stores (car, cdr, type tag packed into the cdr word's
        // line) against one free-list load. Allocation-heavy phases
        // give li its high store-to-load ratio.
        const std::uint32_t cell = free_head_;
        free_head_ = cdr_[cell];

        const RegId fl = emit.load(cell_addr(cell) + 8, 8); // free link
        RegId val = emit.intAlu(fl);                        // eval arg
        val = emit.intAlu(val);                             // tag bits
        emit.intAlu(val);                                   // gc colour
        emit.store(cell_addr(cell) + 0, 8, invalid_reg, val); // car
        emit.store(cell_addr(cell) + 8, 8, invalid_reg, val); // cdr
        if (rng.chance(0.6))
            emit.store(cell_addr(cell) + 0, 1, invalid_reg, val); // tag
        emit.branch(val);

        cdr_[cell] = list_head_;
        list_head_ = cell;
        ++list_len_;

        // Keep the pool from exhausting: recycle the oldest cells once
        // the list is long (a free that costs one store).
        if (list_len_ > pool_cells / 2) {
            std::uint32_t prev = list_head_;
            for (unsigned k = 0; k + 1 < list_len_ && cdr_[prev] != 0;
                 ++k)
                prev = cdr_[prev];
            const std::uint32_t dead = prev;
            emit.store(cell_addr(dead) + 8, 8, invalid_reg, val);
            cdr_[dead] = free_head_;
            free_head_ = dead;
            --list_len_;
        }
    } else {
        // Traverse a few cells starting from a rotating cursor (an
        // interpreter walking an old list, not the cell it just made,
        // so these loads hit the cache rather than in-flight stores).
        std::uint32_t cur = cursor_;
        cursor_ = (cursor_ + 37) % pool_cells;
        RegId chain = invalid_reg;
        const unsigned hops = 2 + static_cast<unsigned>(rng.below(3));
        for (unsigned h = 0; h < hops; ++h) {
            const RegId car = emit.load(cell_addr(cur) + 0, 8, chain);
            const RegId cdr = emit.load(cell_addr(cur) + 8, 8, chain);
            const RegId e = emit.intAlu(car, cdr);
            emit.intAlu(e);
            chain = cdr;
            cur = cdr_[cur];
        }
        emit.branch(chain);
    }
}

} // namespace lbic
