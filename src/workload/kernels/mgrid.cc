/**
 * @file
 * 3-D multigrid relaxation kernel (stands in for SPEC95 107.mgrid).
 */

#include "workload/kernels.hh"

namespace lbic
{

MgridKernel::MgridKernel(std::uint64_t seed)
    : KernelWorkload("mgrid", seed)
{
}

void
MgridKernel::init()
{
    grid_u_ = heap_base;
    grid_r_ = grid_u_ + Addr{dim} * dim * dim * 8 + 4096;
    resid_reg_ = invalid_reg;
    x_ = 1;
    y_ = 1;
    z_ = 1;
}

void
MgridKernel::step()
{
    const auto at = [](Addr base, unsigned x, unsigned y, unsigned z) {
        return base + ((Addr{z} * dim + y) * dim + x) * 8;
    };

    // 27-point residual stencil: load the full 3x3x3 neighbourhood
    // (x-neighbours share lines; y/z neighbours stride by a row or a
    // plane), combine with the four symmetric coefficients, and store
    // one result. Nearly pure loads: mgrid's store-to-load ratio is
    // 0.04, the lowest of the ten programs.
    RegId acc = invalid_reg;
    RegId ring1 = invalid_reg;
    RegId ring2 = invalid_reg;
    for (int dz = -1; dz <= 1; ++dz) {
        for (int dy = -1; dy <= 1; ++dy) {
            RegId row = invalid_reg;
            for (int dx = -1; dx <= 1; ++dx) {
                const RegId v = emit.load(
                    at(grid_u_, x_ + dx, y_ + dy, z_ + dz), 8);
                row = row == invalid_reg ? v : emit.fpAdd(row, v);
            }
            const int ring = (dz != 0) + (dy != 0);
            if (ring == 0)
                acc = row;
            else if (ring == 1)
                ring1 = ring1 == invalid_reg ? row
                                             : emit.fpAdd(ring1, row);
            else
                ring2 = ring2 == invalid_reg ? row
                                             : emit.fpAdd(ring2, row);
        }
    }
    RegId r = emit.fpMult(acc);
    RegId t1 = emit.fpMult(ring1);
    RegId t2 = emit.fpMult(ring2);
    r = emit.fpAdd(r, t1);
    r = emit.fpAdd(r, t2);
    const RegId res = emit.fpAdd(r);

    // Smoother coefficients: extra per-point FP work that the real
    // psinv/resid pair performs.
    RegId s1 = emit.fpMult(res, acc);
    RegId s2 = emit.fpMult(res, t1);
    RegId s3 = emit.fpAdd(s1, s2);
    RegId s4 = emit.fpMult(s3, t2);
    RegId s5 = emit.fpAdd(s4, s1);
    RegId s6 = emit.fpMult(s5);
    RegId s7 = emit.fpAdd(s6, s2);
    RegId s8 = emit.fpMult(s7);
    RegId s9 = emit.fpAdd(s8, s3);
    emit.fpMult(s9);

    // The residual norm accumulates across points: a two-add carried
    // recurrence (4 cycles) that bounds mgrid's otherwise enormous
    // point-level parallelism.
    resid_reg_ = emit.fpAdd(resid_reg_, res);
    resid_reg_ = emit.fpAdd(resid_reg_);

    emit.store(at(grid_r_, x_, y_, z_), 8, invalid_reg, res);

    // Loop nest bookkeeping.
    RegId idx = emit.intAlu();
    emit.intAlu(idx);
    emit.branch(idx);

    if (++x_ >= dim - 1) {
        x_ = 1;
        emit.branch();
        if (++y_ >= dim - 1) {
            y_ = 1;
            if (++z_ >= dim - 1)
                z_ = 1;
        }
    }
}

} // namespace lbic
