/**
 * @file
 * 2-D hydrodynamics stencil kernel (stands in for SPEC95 104.hydro2d).
 */

#include "workload/kernels.hh"

namespace lbic
{

Hydro2dKernel::Hydro2dKernel(std::uint64_t seed)
    : KernelWorkload("hydro2d", seed)
{
}

void
Hydro2dKernel::init()
{
    // Two grids of doubles, each several times the 32 KB L1.
    grid_a_ = heap_base;
    grid_b_ = grid_a_ + Addr{rows} * cols * 8 + 4096;
    grid_c_ = grid_b_ + Addr{rows} * cols * 8 + 4096;
    i_ = 1;
    j_ = 1;
    flux_reg_ = invalid_reg;
}

void
Hydro2dKernel::step()
{
    const auto at = [](Addr base, unsigned r, unsigned c) {
        return base + (Addr{r} * cols + c) * 8;
    };

    // Five-point stencil on one cell: east/west neighbours share the
    // centre's cache line most of the time; north/south are a full row
    // (2 KB) away. Result goes to the second grid; the Galerkin
    // correction writes back into the source grid every other cell.
    const RegId w = emit.load(at(grid_a_, i_, j_ - 1), 8);
    const RegId c = emit.load(at(grid_a_, i_, j_), 8);
    const RegId e = emit.load(at(grid_a_, i_, j_ + 1), 8);
    const RegId n = emit.load(at(grid_a_, i_ - 1, j_), 8);
    const RegId s = emit.load(at(grid_a_, i_ + 1, j_), 8);

    RegId t1 = emit.fpAdd(w, e);
    RegId t2 = emit.fpAdd(n, s);
    t1 = emit.fpMult(t1, c);
    t2 = emit.fpMult(t2, c);
    RegId flux = emit.fpAdd(t1, t2);
    flux = emit.fpMult(flux);
    // The flux limiter uses the west neighbour's flux, carried from
    // the previous cell: hydro2d's loop-carried recurrence.
    RegId lim = emit.fpAdd(flux, flux_reg_);
    flux_reg_ = emit.intAlu(lim);
    lim = emit.fpMult(lim, t1);
    RegId out = emit.fpAdd(lim, t2);
    out = emit.fpAdd(out);
    RegId visc = emit.fpMult(out, c);
    visc = emit.fpAdd(visc, t1);
    visc = emit.fpMult(visc);
    out = emit.fpAdd(out, visc);
    emit.fpMult(out);

    emit.store(at(grid_b_, i_, j_), 8, invalid_reg, out);
    if ((j_ & 1) == 0)
        emit.store(at(grid_c_, i_, j_), 8, invalid_reg, visc);

    // Induction-variable updates and loop tests.
    RegId idx = emit.intAlu();
    idx = emit.intAlu(idx);
    emit.intAlu(idx);
    emit.branch(idx);

    if (++j_ >= cols - 1) {
        j_ = 1;
        flux_reg_ = invalid_reg;   // recurrence restarts per row
        if (++i_ >= rows - 1)
            i_ = 1;
        emit.branch();
    }
}

} // namespace lbic
