/**
 * @file
 * Text/hash-processing kernel (stands in for SPEC95 134.perl).
 */

#include "workload/kernels.hh"

namespace lbic
{

PerlKernel::PerlKernel(std::uint64_t seed)
    : KernelWorkload("perl", seed)
{
}

void
PerlKernel::init()
{
    // A large string arena (occasional cold touches), an associative-
    // array hash table, and a small hot scratch buffer where most of
    // the string copying happens.
    arena_base_ = heap_base;
    hash_base_ = arena_base_ + (1u << 19);          // 512 KB arena
    scratch_base_ = hash_base_ + Addr{hash_entries} * 16;
    arena_pos_ = 0;
    op_reg_ = invalid_reg;
}

void
PerlKernel::step()
{
    // Copy a short string: unit-stride load/store word pairs. Most
    // copies shuffle the hot scratch buffer; some pull from the cold
    // arena (perl's modest miss rate).
    const bool cold = rng.chance(0.05);
    Addr src;
    if (cold) {
        arena_pos_ = (arena_pos_ + 4096 + rng.below(8192)) & ~Addr{7};
        src = arena_base_ + (arena_pos_ % (1u << 19));
    } else {
        src = scratch_base_ + (rng.below(2048) & ~Addr{7});
    }
    const Addr dst = scratch_base_ + 8192 + (rng.below(2048) & ~Addr{7});

    const unsigned words = 3 + static_cast<unsigned>(rng.below(3));
    RegId vals[8];
    RegId last = invalid_reg;
    for (unsigned w = 0; w < words; ++w) {
        vals[w] = emit.load(src + Addr{w} * 8, 8);
        last = vals[w];
    }
    for (unsigned w = 0; w < words; ++w)
        emit.store(dst + Addr{w} * 8, 8, invalid_reg, vals[w]);
    RegId len = emit.intAlu(last);      // length bookkeeping
    len = emit.intAlu(len);             // SV flag update
    emit.intAlu(len);                   // refcount
    emit.branch(last);                  // copy-loop exit test

    // Hash the string and probe the associative array.
    RegId h = emit.intAlu(last);
    h = emit.intMult(h);
    h = emit.intAlu(h, last);
    const std::uint32_t slot =
        static_cast<std::uint32_t>(rng.below(hash_entries));
    const RegId bucket = emit.load(hash_base_ + Addr{slot} * 16, 8, h);
    const RegId key = emit.load(hash_base_ + Addr{slot} * 16 + 8, 8, h);
    const RegId cmp = emit.intAlu(bucket, key);
    emit.branch(cmp);

    // Update the value in place about half the time (hash writes),
    // otherwise just read it.
    if (rng.chance(0.5)) {
        emit.store(hash_base_ + Addr{slot} * 16 + 8, 8, h, cmp);
        emit.intAlu(cmp);
    } else {
        emit.intAlu(cmp, bucket);
    }
    // The op-tree walk: perl's interpreter advances its op pointer
    // serially through three dependent operations per statement.
    op_reg_ = emit.intAlu(cmp, op_reg_);
    op_reg_ = emit.intAlu(op_reg_);
    op_reg_ = emit.intAlu(op_reg_);
    emit.branch();
}

} // namespace lbic
