/**
 * @file
 * Shallow-water-model kernel (stands in for SPEC95 102.swim).
 */

#include "workload/kernels.hh"

namespace lbic
{

SwimKernel::SwimKernel(std::uint64_t seed)
    : KernelWorkload("swim", seed)
{
}

void
SwimKernel::init()
{
    // Six parallel arrays of doubles. The bases are deliberately
    // aligned to a multiple of 4 KB: for any number of banks up to
    // 128, element i of every array maps to the same bank, so the
    // u[i], v[i], p[i] reference run hits one bank three times in
    // three different lines -- swim's B-diff-line pathology in
    // Figure 3 (33.8%, the highest of the ten programs).
    // Span between array bases: congruent mod 4 KB (same bank for any
    // bank count up to 128) but offset by three lines mod the 32 KB
    // cache so corresponding elements do NOT collide in the same
    // direct-mapped set (the real arrays are 513x513, i.e. odd-sized).
    constexpr Addr array_bytes = Addr{n_elems} * 8;
    constexpr Addr span = ((array_bytes + 4095) & ~Addr{4095}) + 4096
        + 512;
    u_ = heap_base;
    v_ = u_ + span;
    p_ = v_ + span;
    unew_ = p_ + span;
    vnew_ = unew_ + span;
    pnew_ = vnew_ + span;
    idx_ = 1;
    check_reg_ = invalid_reg;
}

void
SwimKernel::step()
{
    const Addr off = (idx_ % (n_elems - 1)) * 8;
    const Addr off1 = off + 8;

    // One column update of the CU/CV/Z/H equations: read u, v and p at
    // i and i+1 (the i+1 line is reused next iteration), combine, and
    // write the three new-timestep arrays on alternating iterations.
    const RegId u0 = emit.load(u_ + off, 8);
    const RegId u1 = emit.load(u_ + off1, 8);
    const RegId v0 = emit.load(v_ + off, 8);
    const RegId v1 = emit.load(v_ + off1, 8);
    const RegId p0 = emit.load(p_ + off, 8);
    const RegId p1 = emit.load(p_ + off1, 8);

    RegId cu = emit.fpAdd(p0, p1);
    cu = emit.fpMult(cu, u0);
    RegId cv = emit.fpAdd(p0, p1);
    cv = emit.fpMult(cv, v0);
    RegId z = emit.fpAdd(v1, v0);
    z = emit.fpAdd(z, u1);
    z = emit.fpMult(z);
    RegId h = emit.fpMult(u0, u0);
    RegId h2 = emit.fpMult(v0, v0);
    h = emit.fpAdd(h, h2);
    h = emit.fpMult(h);
    h = emit.fpAdd(h, p0);

    // Re-read the previous new-timestep values (hot lines written a
    // few iterations ago) for the time-smoothing term.
    const RegId uprev = emit.load(unew_ + off, 8);
    const RegId vprev = emit.load(vnew_ + off, 8);
    RegId us = emit.fpAdd(uprev, cu);
    RegId vs = emit.fpAdd(vprev, cv);
    us = emit.fpMult(us, z);
    vs = emit.fpMult(vs, z);

    emit.store(unew_ + off, 8, invalid_reg, us);
    emit.store(vnew_ + off, 8, invalid_reg, vs);
    if ((idx_ & 3) == 0)
        emit.store(pnew_ + off, 8, invalid_reg, h);

    // Energy-check accumulation carried across columns (the CHECK
    // loop of the real program): ~3 cycles per iteration.
    check_reg_ = emit.fpAdd(check_reg_, h);
    emit.intAlu(check_reg_);

    // Loop bookkeeping.
    const RegId i = emit.intAlu();
    emit.intAlu(i);
    emit.branch(i);

    ++idx_;
}

} // namespace lbic
