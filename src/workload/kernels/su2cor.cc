/**
 * @file
 * Lattice quantum-chromodynamics kernel (stands in for SPEC95
 * 103.su2cor).
 */

#include "workload/kernels.hh"

namespace lbic
{

namespace
{

/** Bytes per complex 3x3 link matrix (18 doubles). */
constexpr Addr link_bytes = 18 * 8;

/** Bytes per complex 3-vector field element (6 doubles). */
constexpr Addr field_bytes = 6 * 8;

} // anonymous namespace

Su2corKernel::Su2corKernel(std::uint64_t seed)
    : KernelWorkload("su2cor", seed)
{
}

void
Su2corKernel::init()
{
    const Addr sites = Addr{lat_dim} * lat_dim * lat_dim * lat_dim;
    links_base_ = heap_base;
    field_base_ = links_base_ + sites * 4 * link_bytes + 4096;
    result_base_ = field_base_ + sites * field_bytes + 4096;
    site_ = 0;
    dir_ = 0;
    action_reg_ = invalid_reg;
}

void
Su2corKernel::step()
{
    const Addr sites = Addr{lat_dim} * lat_dim * lat_dim * lat_dim;

    // One link-matrix application: load the SU(3) link for (site, dir),
    // gather the fermion field at the neighbour site in that
    // direction (direction-dependent stride through the 4-D lattice),
    // multiply, and accumulate into the result field.
    const Addr link = links_base_
        + (Addr{site_} * 4 + dir_) * link_bytes;

    // Neighbour offset: +1, +L, +L^2, +L^3 sites depending on dir.
    Addr stride = 1;
    for (unsigned d = 0; d < dir_; ++d)
        stride *= lat_dim;
    const std::uint32_t nbr =
        static_cast<std::uint32_t>((site_ + stride) % sites);

    // Load the full 3x3 complex matrix (18 doubles streamed over 4.5
    // cache lines) and the neighbour's complex 3-vector (6 doubles).
    RegId m[18];
    for (unsigned e = 0; e < 18; ++e)
        m[e] = emit.load(link + Addr{e} * 8, 8);
    RegId v[6];
    for (unsigned e = 0; e < 6; ++e) {
        v[e] = emit.load(field_base_ + Addr{nbr} * field_bytes
                         + Addr{e} * 8, 8);
    }

    // Complex matrix-vector product: per output row, three complex
    // multiplies (4 real mults + 2 adds each) and a reduction.
    RegId out[6];
    for (unsigned r = 0; r < 3; ++r) {
        RegId acc_re = invalid_reg;
        RegId acc_im = invalid_reg;
        for (unsigned c = 0; c < 3; ++c) {
            const RegId mre = m[(r * 3 + c) * 2];
            const RegId mim = m[(r * 3 + c) * 2 + 1];
            RegId re = emit.fpMult(mre, v[c * 2]);
            RegId re2 = emit.fpMult(mim, v[c * 2 + 1]);
            re = emit.fpAdd(re, re2);
            RegId im = emit.fpMult(mre, v[c * 2 + 1]);
            RegId im2 = emit.fpMult(mim, v[c * 2]);
            im = emit.fpAdd(im, im2);
            acc_re = acc_re == invalid_reg ? re
                                           : emit.fpAdd(acc_re, re);
            acc_im = acc_im == invalid_reg ? im
                                           : emit.fpAdd(acc_im, im);
        }
        out[r * 2] = acc_re;
        out[r * 2 + 1] = acc_im;
    }

    // Write the result vector and accumulate into it where the
    // previous direction already produced a partial sum.
    for (unsigned e = 0; e < 6; ++e) {
        const Addr dst = result_base_ + Addr{site_} * field_bytes
            + Addr{e} * 8;
        if (e < 2) {
            const RegId old = emit.load(dst, 8);
            const RegId sum = emit.fpAdd(old, out[e]);
            emit.store(dst, 8, invalid_reg, sum);
        } else {
            emit.store(dst, 8, invalid_reg, out[e]);
        }
    }

    // Momentum update: two sequential writes per link application.
    const Addr mom = result_base_ + (Addr{lat_dim} * lat_dim * lat_dim
                                     * lat_dim) * field_bytes + 4096
        + (Addr{site_} * 4 + dir_) * 16;
    emit.store(mom, 8, invalid_reg, out[0]);
    emit.store(mom + 8, 8, invalid_reg, out[1]);

    // The plaquette action sums over every link application: a carried
    // five-add recurrence (10 cycles) that reins in the otherwise
    // enormous site-level parallelism, as the real program's global
    // reductions do.
    action_reg_ = emit.fpAdd(action_reg_, out[0]);
    action_reg_ = emit.fpAdd(action_reg_, out[1]);
    action_reg_ = emit.fpAdd(action_reg_, out[2]);
    action_reg_ = emit.fpAdd(action_reg_, out[3]);
    action_reg_ = emit.fpAdd(action_reg_);

    // Loop bookkeeping.
    const RegId idx = emit.intAlu();
    emit.intAlu(idx);
    emit.branch(idx);

    if (++dir_ >= 4) {
        dir_ = 0;
        site_ = static_cast<std::uint32_t>((site_ + 1) % sites);
    }
}

} // namespace lbic
