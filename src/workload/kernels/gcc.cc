/**
 * @file
 * Compiler IR-walk kernel (stands in for SPEC95 126.gcc).
 */

#include "workload/kernels.hh"

namespace lbic
{

GccKernel::GccKernel(std::uint64_t seed)
    : KernelWorkload("gcc", seed)
{
}

void
GccKernel::init()
{
    pool_base_ = heap_base;
    symtab_base_ = pool_base_ + pool_nodes * node_bytes + (1u << 16);

    // Build the mirrored child links: a mostly-sequential walk with
    // occasional back edges, like a flattened expression tree.
    next_.assign(pool_nodes, 0);
    for (std::uint32_t i = 0; i < pool_nodes; ++i) {
        if (rng.chance(0.85)) {
            next_[i] = (i + 1) % pool_nodes;
        } else {
            next_[i] = static_cast<std::uint32_t>(rng.below(pool_nodes));
        }
    }
    cursor_ = 0;
    chase_reg_ = invalid_reg;
}

void
GccKernel::step()
{
    const Addr node = pool_base_ + Addr{cursor_} * node_bytes;

    // Visit one 64-byte IR node: the core fields (opcode, operands,
    // child link) live on the first cache line and the attribute /
    // note fields on the second, so a visit keeps two lines -- and
    // hence two banks -- busy. The child pointer needs two address
    // computations (tag strip and bounds check) before it can be
    // dereferenced, which is the pointer-chase recurrence that bounds
    // gcc's ILP.
    RegId ptr = emit.intAlu(chase_reg_);
    ptr = emit.intAlu(ptr);
    const RegId opcode = emit.load(node + 0, 8, ptr);
    const RegId operand = emit.load(node + 8, 8, ptr);
    const RegId link = emit.load(node + 16, 8, ptr);
    const RegId attr = emit.load(node + 32, 8, ptr);
    const RegId note = emit.load(node + 40, 8, ptr);

    RegId v = emit.intAlu(opcode, operand);   // classify node
    v = emit.intAlu(v);                       // fold constants
    emit.branch(v);                           // switch on tree code
    RegId a = emit.intAlu(attr, note);        // merge attribute flags
    a = emit.intAlu(a, v);
    emit.branch(a);

    // Rewrite the folded operand and the attribute word (read-modify-
    // write on both of the node's lines).
    emit.store(node + 8, 8, ptr, v);
    if (rng.chance(0.7))
        emit.store(node + 24, 8, ptr, v);
    emit.store(node + 48, 8, ptr, a);

    // Symbol-table probe for identifier nodes.
    if (rng.chance(0.10)) {
        const std::uint32_t slot =
            static_cast<std::uint32_t>(rng.below(symtab_entries));
        const RegId hash = emit.intAlu(opcode);
        const RegId sym = emit.load(symtab_base_ + Addr{slot} * 16, 8,
                                    hash);
        emit.intAlu(sym);
        emit.branch(sym);
    }

    // Register-allocation bookkeeping and loop control; the next
    // address comes from the link value just loaded.
    RegId r = emit.intAlu(v, a);
    r = emit.intAlu(r);
    emit.intAlu(r);
    emit.intAlu(link);
    emit.intAlu(v);
    emit.branch(link);

    chase_reg_ = link;
    cursor_ = next_[cursor_];
}

} // namespace lbic
