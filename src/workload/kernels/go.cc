/**
 * @file
 * Game-tree board-evaluation kernel (stands in for SPEC95 099.go).
 */

#include "workload/kernels.hh"

namespace lbic
{

GoKernel::GoKernel(std::uint64_t seed)
    : KernelWorkload("go", seed)
{
}

void
GoKernel::init()
{
    // A stack of board copies (the game tree being searched), a large
    // pattern-matching table, and a move-history array.
    boards_base_ = heap_base;
    patterns_base_ = boards_base_
        + Addr{num_boards} * board_dim * board_dim + (1u << 16);
    history_base_ = patterns_base_ + Addr{pattern_entries} * 32;
    move_ = 0;
    eval_reg_ = invalid_reg;
}

void
GoKernel::step()
{
    // Evaluate one candidate point: read the point and its four
    // neighbours from the current board copy, run the influence
    // computation, consult the pattern table for some points, and
    // occasionally record a move (board write + history append).
    const std::uint32_t board =
        static_cast<std::uint32_t>(rng.below(num_boards));
    const std::uint32_t row = 1
        + static_cast<std::uint32_t>(rng.below(board_dim - 2));
    const std::uint32_t col = 1
        + static_cast<std::uint32_t>(rng.below(board_dim - 2));
    const Addr cell = boards_base_
        + Addr{board} * board_dim * board_dim
        + Addr{row} * board_dim + col;

    const RegId c = emit.load(cell, 1);
    const RegId west = emit.load(cell - 1, 1);
    const RegId east = emit.load(cell + 1, 1);
    const RegId north = emit.load(cell - board_dim, 1);
    const RegId south = emit.load(cell + board_dim, 1);

    // Influence/liberty computation: a tree of integer operations and
    // data-dependent branches over the five stones. The running
    // position evaluation (eval_reg_) is carried across points --
    // go's alpha-beta bookkeeping -- which bounds its ILP.
    RegId a = emit.intAlu(c, west);
    RegId b = emit.intAlu(east, north);
    a = emit.intAlu(a, south);
    emit.branch(a);
    b = emit.intAlu(a, b);
    RegId lib = emit.intAlu(b);
    emit.branch(lib);
    lib = emit.intAlu(lib, c);
    RegId score = emit.intAlu(lib, eval_reg_);
    RegId margin = emit.intAlu(score);
    margin = emit.intAlu(margin);
    eval_reg_ = emit.intAlu(margin);
    score = emit.intAlu(score, b);
    emit.branch(score);
    score = emit.intAlu(score);
    emit.intAlu(score);

    // Pattern-table lookup for tactically interesting points; common
    // shapes dominate, so most probes hit a small hot subset.
    if (rng.chance(0.35)) {
        const std::uint32_t slot = rng.chance(0.9)
            ? static_cast<std::uint32_t>(rng.below(256))
            : static_cast<std::uint32_t>(rng.below(pattern_entries));
        const RegId hash = emit.intAlu(score);
        const RegId pat =
            emit.load(patterns_base_ + Addr{slot} * 32, 8, hash);
        const RegId match = emit.intAlu(pat, score);
        emit.branch(match);
        emit.intAlu(match);
    }

    // Update the influence map for this point (go writes its
    // evaluation scratch arrays heavily), and record chosen moves.
    emit.store(history_base_ + 16384 + (cell - boards_base_) % 4096,
               4, invalid_reg, score);
    if (rng.chance(0.45)) {
        emit.store(cell, 1, invalid_reg, score);
        emit.store(history_base_ + Addr{move_ % 4096} * 4, 4,
                   invalid_reg, score);
        ++move_;
        emit.intAlu(score);
    }

    emit.intAlu(score);
    emit.branch();
}

} // namespace lbic
