/**
 * @file
 * Particle-in-cell plasma kernel (stands in for SPEC95 145.wave5).
 */

#include "workload/kernels.hh"

namespace lbic
{

Wave5Kernel::Wave5Kernel(std::uint64_t seed)
    : KernelWorkload("wave5", seed)
{
}

void
Wave5Kernel::init()
{
    // Structure-of-arrays particle storage, like the real Fortran:
    // x, y, vx and vy are separate arrays swept with unit stride.
    particles_base_ = heap_base;
    field_base_ = particles_base_ + Addr{num_particles} * 4 * 8 + 4096;
    charge_base_ = field_base_ + Addr{grid_cells} * 8 + 4096;
    particle_ = 0;
    energy_reg_ = invalid_reg;
}

void
Wave5Kernel::step()
{
    // Push one particle: read position and velocity from the four
    // parallel arrays (unit stride), locate its grid cell, gather the
    // field at the four surrounding mesh points, update, write back,
    // and deposit charge.
    const Addr stride = Addr{num_particles} * 8;
    const Addr x_arr = particles_base_;
    const Addr y_arr = particles_base_ + stride + 544;
    const Addr vx_arr = particles_base_ + 2 * (stride + 544);
    const Addr vy_arr = particles_base_ + 3 * (stride + 544);
    const Addr off = Addr{particle_} * 8;

    const RegId px = emit.load(x_arr + off, 8);
    const RegId py = emit.load(y_arr + off, 8);
    const RegId vx = emit.load(vx_arr + off, 8);
    const RegId vy = emit.load(vy_arr + off, 8);

    // Particles are spatially coherent: nearby particles live in
    // nearby cells (the real code's particle arrays are built column
    // by column), so consecutive gathers cluster with a slow drift
    // plus occasional jumps.
    const std::uint32_t row_dim = 256;
    // Several consecutive particles live in the same cell (the arrays
    // are built column by column), so gathers reuse lines and the
    // charge deposit forms a genuine read-modify-write chain.
    const std::uint32_t base_cell = static_cast<std::uint32_t>(
        (Addr{particle_ / 8} * 5 + rng.below(4))
        % (grid_cells - row_dim - 2));

    const RegId ci = emit.intAlu(px);       // cell index from position
    const RegId cj = emit.intAlu(py);
    emit.intAlu(ci, cj);

    const RegId f00 =
        emit.load(field_base_ + Addr{base_cell} * 8, 8, ci);
    const RegId f01 =
        emit.load(field_base_ + Addr{base_cell + 1} * 8, 8, ci);
    const RegId f10 =
        emit.load(field_base_ + Addr{base_cell + row_dim} * 8, 8, cj);
    const RegId f11 =
        emit.load(field_base_ + Addr{base_cell + row_dim + 1} * 8, 8,
                  cj);

    // Bilinear interpolation weights and the leapfrog update.
    RegId wx = emit.fpAdd(px, ci);
    RegId wy = emit.fpAdd(py, cj);
    RegId w00 = emit.fpMult(wx, wy);
    RegId w01 = emit.fpMult(wx, wy);
    RegId ex = emit.fpMult(f00, w00);
    RegId e2 = emit.fpMult(f01, w01);
    ex = emit.fpAdd(ex, e2);
    RegId ey = emit.fpMult(f10, w00);
    RegId e3 = emit.fpMult(f11, w01);
    ey = emit.fpAdd(ey, e3);
    RegId e = emit.fpAdd(ex, ey);
    e = emit.fpMult(e);
    RegId nvx = emit.fpAdd(vx, e);
    RegId nvy = emit.fpAdd(vy, e);
    RegId nx = emit.fpMult(nvx);
    RegId ny = emit.fpMult(nvy);
    nx = emit.fpAdd(px, nx);
    ny = emit.fpAdd(py, ny);
    nx = emit.fpAdd(nx, e);
    ny = emit.fpAdd(ny, e);

    // Write the particle back (same lines as the reads).
    emit.store(x_arr + off, 8, invalid_reg, nx);
    emit.store(y_arr + off, 8, invalid_reg, ny);
    if (rng.chance(0.5))
        emit.store(vx_arr + off, 8, invalid_reg, nvx);

    // Deposit charge: read-modify-write of the cell's charge.
    const RegId q = emit.load(charge_base_ + Addr{base_cell} * 8, 8, ci);
    const RegId nq = emit.fpAdd(q, e);
    emit.store(charge_base_ + Addr{base_cell} * 8, 8, ci, nq);

    // Field-energy accumulation: a carried two-add recurrence across
    // particles (the diagnostic sums of the real program).
    energy_reg_ = emit.fpAdd(energy_reg_, e);
    energy_reg_ = emit.fpAdd(energy_reg_);
    energy_reg_ = emit.intAlu(energy_reg_);

    // Loop bookkeeping.
    const RegId i = emit.intAlu();
    emit.intAlu(i);
    emit.branch(i);

    particle_ = (particle_ + 1) % num_particles;
}

} // namespace lbic
