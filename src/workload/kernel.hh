/**
 * @file
 * Base class for algorithmic workload kernels.
 *
 * A KernelWorkload runs a real (if scaled-down) algorithm over real
 * in-memory data structures, emitting the instruction stream that a
 * compiled version of the algorithm would produce. Subclasses
 * implement init() to build their data structures and step() to emit
 * one algorithmic unit of work (typically one loop iteration).
 */

#ifndef LBIC_WORKLOAD_KERNEL_HH
#define LBIC_WORKLOAD_KERNEL_HH

#include <cstdint>
#include <string>

#include "common/random.hh"
#include "workload/emitter.hh"
#include "workload/workload.hh"

namespace lbic
{

/** A workload defined by an init() + step() algorithm pair. */
class KernelWorkload : public Workload
{
  public:
    /**
     * @param name kernel name.
     * @param seed PRNG seed; the same seed reproduces the same stream.
     */
    KernelWorkload(std::string name, std::uint64_t seed);

    const std::string &name() const override { return name_; }

    bool next(DynInst &inst) override;

    void reset() override;

  protected:
    /** Build (or rebuild) the kernel's data structures. */
    virtual void init() = 0;

    /** Emit at least one instruction of the next unit of work. */
    virtual void step() = 0;

    /**
     * Base byte address of the kernel's simulated heap. Kernels lay
     * out their arrays and structures above this address. The value
     * is arbitrary but non-zero so address arithmetic bugs (null
     * derefs) are visible.
     */
    static constexpr Addr heap_base = 0x10000000;

    Emitter emit;
    Random rng;

  private:
    std::string name_;
    std::uint64_t seed_;
    bool initialized_ = false;
};

} // namespace lbic

#endif // LBIC_WORKLOAD_KERNEL_HH
