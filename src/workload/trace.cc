#include "trace.hh"

#include <array>
#include <cstring>
#include <sstream>
#include <vector>

#include "common/logging.hh"
#include "common/sim_error.hh"

namespace lbic
{

namespace
{

constexpr std::uint32_t trace_magic = 0x4c424943;  // "LBIC"
constexpr std::uint32_t trace_version = 1;

/** On-disk record layout (packed manually for portability). */
struct PackedRecord
{
    std::uint8_t op;
    std::uint8_t size;
    std::uint32_t dst;
    std::uint32_t src0;
    std::uint32_t src1;
    std::uint64_t addr;
};

static_assert(sizeof(PackedRecord) == trace_record_bytes,
              "trace_record_bytes out of sync with PackedRecord");
static_assert(sizeof(trace_magic) + sizeof(trace_version)
                  == trace_header_bytes,
              "trace_header_bytes out of sync with the header");

PackedRecord
pack(const DynInst &inst)
{
    // Value-initialized so the struct's padding bytes (between size
    // and dst) are zero: the raw-struct write below would otherwise
    // leak indeterminate stack bytes into the file and break
    // byte-identical regeneration of golden traces.
    PackedRecord r{};
    r.op = static_cast<std::uint8_t>(inst.op);
    r.size = inst.size;
    r.dst = inst.dst;
    r.src0 = inst.src[0];
    r.src1 = inst.src[1];
    r.addr = inst.addr;
    return r;
}

DynInst
unpack(const PackedRecord &r)
{
    DynInst inst;
    inst.op = static_cast<OpClass>(r.op);
    inst.size = r.size;
    inst.dst = r.dst;
    inst.src = {r.src0, r.src1};
    inst.addr = r.addr;
    return inst;
}

} // anonymous namespace

TraceWriter::TraceWriter(std::ostream &os)
    : os_(os)
{
    os_.write(reinterpret_cast<const char *>(&trace_magic),
              sizeof(trace_magic));
    os_.write(reinterpret_cast<const char *>(&trace_version),
              sizeof(trace_version));
}

void
TraceWriter::write(const DynInst &inst)
{
    const PackedRecord r = pack(inst);
    os_.write(reinterpret_cast<const char *>(&r), sizeof(r));
    ++count_;
}

std::uint64_t
TraceWriter::capture(Workload &src, std::ostream &os, std::uint64_t n)
{
    TraceWriter writer(os);
    DynInst inst;
    std::uint64_t captured = 0;
    while (captured < n && src.next(inst)) {
        writer.write(inst);
        ++captured;
    }
    return captured;
}

TraceReplayWorkload::TraceReplayWorkload(std::istream &is)
{
    std::uint32_t magic = 0;
    std::uint32_t version = 0;
    is.read(reinterpret_cast<char *>(&magic), sizeof(magic));
    is.read(reinterpret_cast<char *>(&version), sizeof(version));
    if (!is)
        throw SimError(SimErrorKind::Config,
                       "truncated trace: the stream ends inside the "
                       "8-byte magic/version header");
    if (magic != trace_magic) {
        std::ostringstream os;
        os << "not an LBIC trace: magic 0x" << std::hex << magic
           << ", expected 0x" << trace_magic;
        throw SimError(SimErrorKind::Config, os.str());
    }
    if (version != trace_version)
        throw SimError(SimErrorKind::Config,
                       "unsupported trace version "
                           + std::to_string(version)
                           + " (this build reads version "
                           + std::to_string(trace_version) + ")");

    PackedRecord r;
    for (;;) {
        is.read(reinterpret_cast<char *>(&r), sizeof(r));
        if (is.gcount() == 0 && is.eof())
            break;
        if (is.gcount()
            != static_cast<std::streamsize>(sizeof(r))) {
            // A record cut short is corruption, not end-of-stream:
            // silently dropping it would replay a different stream
            // than was captured.
            throw SimError(
                SimErrorKind::Config,
                "truncated trace: record "
                    + std::to_string(insts_.size()) + " holds "
                    + std::to_string(is.gcount()) + " of "
                    + std::to_string(sizeof(r)) + " bytes");
        }
        if (r.op >= static_cast<std::uint8_t>(OpClass::NumClasses))
            throw SimError(SimErrorKind::Config,
                           "corrupt trace: record "
                               + std::to_string(insts_.size())
                               + " holds invalid op class "
                               + std::to_string(r.op));
        insts_.push_back(unpack(r));
    }
}

bool
TraceReplayWorkload::next(DynInst &inst)
{
    if (pos_ >= insts_.size())
        return false;
    inst = insts_[pos_++];
    return true;
}

} // namespace lbic
