#include "trace.hh"

#include <array>
#include <cstring>
#include <vector>

#include "common/logging.hh"

namespace lbic
{

namespace
{

constexpr std::uint32_t trace_magic = 0x4c424943;  // "LBIC"
constexpr std::uint32_t trace_version = 1;

/** On-disk record layout (packed manually for portability). */
struct PackedRecord
{
    std::uint8_t op;
    std::uint8_t size;
    std::uint32_t dst;
    std::uint32_t src0;
    std::uint32_t src1;
    std::uint64_t addr;
};

PackedRecord
pack(const DynInst &inst)
{
    PackedRecord r;
    r.op = static_cast<std::uint8_t>(inst.op);
    r.size = inst.size;
    r.dst = inst.dst;
    r.src0 = inst.src[0];
    r.src1 = inst.src[1];
    r.addr = inst.addr;
    return r;
}

DynInst
unpack(const PackedRecord &r)
{
    DynInst inst;
    inst.op = static_cast<OpClass>(r.op);
    inst.size = r.size;
    inst.dst = r.dst;
    inst.src = {r.src0, r.src1};
    inst.addr = r.addr;
    return inst;
}

} // anonymous namespace

TraceWriter::TraceWriter(std::ostream &os)
    : os_(os)
{
    os_.write(reinterpret_cast<const char *>(&trace_magic),
              sizeof(trace_magic));
    os_.write(reinterpret_cast<const char *>(&trace_version),
              sizeof(trace_version));
}

void
TraceWriter::write(const DynInst &inst)
{
    const PackedRecord r = pack(inst);
    os_.write(reinterpret_cast<const char *>(&r), sizeof(r));
    ++count_;
}

std::uint64_t
TraceWriter::capture(Workload &src, std::ostream &os, std::uint64_t n)
{
    TraceWriter writer(os);
    DynInst inst;
    std::uint64_t captured = 0;
    while (captured < n && src.next(inst)) {
        writer.write(inst);
        ++captured;
    }
    return captured;
}

TraceReplayWorkload::TraceReplayWorkload(std::istream &is)
{
    std::uint32_t magic = 0;
    std::uint32_t version = 0;
    is.read(reinterpret_cast<char *>(&magic), sizeof(magic));
    is.read(reinterpret_cast<char *>(&version), sizeof(version));
    if (!is || magic != trace_magic)
        lbic_fatal("not an LBIC trace (bad magic)");
    if (version != trace_version)
        lbic_fatal("unsupported trace version ", version);

    PackedRecord r;
    while (is.read(reinterpret_cast<char *>(&r), sizeof(r)))
        insts_.push_back(unpack(r));
}

bool
TraceReplayWorkload::next(DynInst &inst)
{
    if (pos_ >= insts_.size())
        return false;
    inst = insts_[pos_++];
    return true;
}

} // namespace lbic
