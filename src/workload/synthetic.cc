#include "synthetic.hh"

#include "common/bitops.hh"
#include "common/logging.hh"

namespace lbic
{

namespace
{

/** Fill @p inst as a non-memory filler op with a fresh destination. */
void
fillerOp(DynInst &inst, RegId &next_reg)
{
    inst = DynInst{};
    inst.op = OpClass::IntAlu;
    inst.dst = next_reg++;
}

/** Fill @p inst as a memory op at @p addr. */
void
memOp(DynInst &inst, bool store, Addr addr, unsigned size,
      RegId &next_reg, RegId dep = invalid_reg)
{
    inst = DynInst{};
    inst.op = store ? OpClass::Store : OpClass::Load;
    inst.dst = store ? invalid_reg : next_reg++;
    inst.src = {dep, invalid_reg};
    inst.addr = addr;
    inst.size = static_cast<std::uint8_t>(size);
}

} // anonymous namespace

UniformRandomWorkload::UniformRandomWorkload(SyntheticParams params)
    : params_(params), rng_(params.seed)
{
    lbic_assert(params_.region >= params_.size,
                "synthetic region smaller than access size");
}

bool
UniformRandomWorkload::next(DynInst &inst)
{
    if (!rng_.chance(params_.mem_fraction)) {
        fillerOp(inst, next_reg_);
        return true;
    }
    const Addr addr = params_.base
        + alignDown(rng_.below(params_.region - params_.size),
                    params_.size);
    memOp(inst, rng_.chance(params_.store_fraction), addr, params_.size,
          next_reg_);
    return true;
}

void
UniformRandomWorkload::reset()
{
    rng_ = Random(params_.seed);
    next_reg_ = 0;
}

StridedWorkload::StridedWorkload(SyntheticParams params, Addr stride)
    : params_(params), stride_(stride), rng_(params.seed)
{
    lbic_assert(stride_ > 0, "stride must be non-zero");
}

bool
StridedWorkload::next(DynInst &inst)
{
    if (!rng_.chance(params_.mem_fraction)) {
        fillerOp(inst, next_reg_);
        return true;
    }
    const Addr addr = params_.base + (pos_ % params_.region);
    pos_ += stride_;
    memOp(inst, rng_.chance(params_.store_fraction), addr, params_.size,
          next_reg_);
    return true;
}

void
StridedWorkload::reset()
{
    pos_ = 0;
    rng_ = Random(params_.seed);
    next_reg_ = 0;
}

PointerChaseWorkload::PointerChaseWorkload(SyntheticParams params,
                                           unsigned chain_count)
    : params_(params), chain_count_(chain_count), rng_(params.seed)
{
    lbic_assert(chain_count_ > 0, "need at least one chase chain");
    reset();
}

bool
PointerChaseWorkload::next(DynInst &inst)
{
    if (!rng_.chance(params_.mem_fraction)) {
        fillerOp(inst, next_reg_);
        return true;
    }
    const unsigned c = turn_;
    turn_ = (turn_ + 1) % chain_count_;

    // The next node address is a deterministic pseudo-random hop; the
    // load *depends on* the previous load in this chain, which is what
    // serializes the stream.
    pos_[c] = params_.base
        + alignDown(rng_.below(params_.region - params_.size),
                    params_.size);
    memOp(inst, false, pos_[c], params_.size, next_reg_, dep_[c]);
    dep_[c] = inst.dst;
    return true;
}

void
PointerChaseWorkload::reset()
{
    rng_ = Random(params_.seed);
    pos_.assign(chain_count_, params_.base);
    dep_.assign(chain_count_, invalid_reg);
    turn_ = 0;
    next_reg_ = 0;
}

SameLineBurstWorkload::SameLineBurstWorkload(SyntheticParams params,
                                             unsigned burst,
                                             unsigned line_bytes)
    : params_(params), burst_(burst), line_bytes_(line_bytes),
      rng_(params.seed)
{
    lbic_assert(burst_ > 0, "burst must be non-zero");
    lbic_assert(isPowerOf2(line_bytes_), "line size must be 2^k");
    lbic_assert(burst_ * params_.size <= line_bytes_,
                "burst does not fit in one line");
    reset();
}

bool
SameLineBurstWorkload::next(DynInst &inst)
{
    if (!rng_.chance(params_.mem_fraction)) {
        fillerOp(inst, next_reg_);
        return true;
    }
    if (in_burst_ == 0) {
        const Addr lines = params_.region / line_bytes_;
        line_ = params_.base + rng_.below(lines) * line_bytes_;
        in_burst_ = burst_;
    }
    const Addr addr = line_ + Addr{burst_ - in_burst_} * params_.size;
    --in_burst_;
    memOp(inst, rng_.chance(params_.store_fraction), addr, params_.size,
          next_reg_);
    return true;
}

void
SameLineBurstWorkload::reset()
{
    rng_ = Random(params_.seed);
    in_burst_ = 0;
    line_ = 0;
    next_reg_ = 0;
}

} // namespace lbic
