#include "registry.hh"

#include "common/sim_error.hh"
#include "workload/kernels.hh"
#include "workload/replay.hh"
#include "workload/synthetic.hh"

namespace lbic
{

const std::vector<std::string> &
specintKernels()
{
    static const std::vector<std::string> names =
        {"compress", "gcc", "go", "li", "perl"};
    return names;
}

const std::vector<std::string> &
specfpKernels()
{
    static const std::vector<std::string> names =
        {"hydro2d", "mgrid", "su2cor", "swim", "wave5"};
    return names;
}

const std::vector<std::string> &
allKernels()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> all = specintKernels();
        const auto &fp = specfpKernels();
        all.insert(all.end(), fp.begin(), fp.end());
        return all;
    }();
    return names;
}

std::unique_ptr<Workload>
makeWorkload(const std::string &name, std::uint64_t seed)
{
    // "trace:<path>" replays a captured binary trace. The seed is
    // irrelevant (the file pins the stream); the spec itself is the
    // workload name so it round-trips through makeWorkload -- which is
    // how the golden checker rebuilds its shadow stream.
    if (name.rfind("trace:", 0) == 0) {
        const std::string path = name.substr(6);
        if (path.empty())
            throw SimError(SimErrorKind::Config,
                           "empty path in workload spec '" + name
                               + "'");
        return std::make_unique<ReplayWorkload>(name, path);
    }

    if (name == "compress")
        return std::make_unique<CompressKernel>(seed);
    if (name == "gcc")
        return std::make_unique<GccKernel>(seed);
    if (name == "go")
        return std::make_unique<GoKernel>(seed);
    if (name == "li")
        return std::make_unique<LiKernel>(seed);
    if (name == "perl")
        return std::make_unique<PerlKernel>(seed);
    if (name == "hydro2d")
        return std::make_unique<Hydro2dKernel>(seed);
    if (name == "mgrid")
        return std::make_unique<MgridKernel>(seed);
    if (name == "su2cor")
        return std::make_unique<Su2corKernel>(seed);
    if (name == "swim")
        return std::make_unique<SwimKernel>(seed);
    if (name == "wave5")
        return std::make_unique<Wave5Kernel>(seed);

    SyntheticParams params;
    params.seed = seed;
    if (name == "uniform")
        return std::make_unique<UniformRandomWorkload>(params);
    if (name == "strided")
        return std::make_unique<StridedWorkload>(params, 8);
    if (name == "chase")
        return std::make_unique<PointerChaseWorkload>(params, 1);
    if (name == "sameline")
        return std::make_unique<SameLineBurstWorkload>(params, 4);

    throw SimError(SimErrorKind::Config,
                   "unknown workload '" + name
                       + "' (see lbicsim mode=list)");
}

} // namespace lbic
