/**
 * @file
 * The ten SPEC95-like workload kernels.
 *
 * Each kernel stands in for one SPEC95 program from Table 2 of the
 * paper. SPEC95 binaries and a MIPS toolchain are not available, so
 * each kernel runs the algorithmic skeleton of its program over real
 * in-memory data structures and emits the corresponding instruction
 * stream. Kernels are tuned to their program's Table 2 fingerprint
 * (fraction of memory instructions, store-to-load ratio, 32 KB L1
 * miss rate) and to the consecutive-reference locality class visible
 * in Figure 3 (same-bank/same-line for the integer codes, same-bank/
 * different-line for swim and wave5, etc.).
 *
 * Integer kernels: compress, gcc, go, li, perl.
 * Floating-point kernels: hydro2d, mgrid, su2cor, swim, wave5.
 */

#ifndef LBIC_WORKLOAD_KERNELS_HH
#define LBIC_WORKLOAD_KERNELS_HH

#include <cstdint>
#include <vector>

#include "workload/kernel.hh"

namespace lbic
{

/**
 * LZW compression (SPEC95 129.compress).
 *
 * Sequential input scan feeding a large open-hash code table. Probes
 * hit a ~580 KB table nearly at random (high miss rate); successful
 * inserts write both the hash and code tables, and compressed output
 * is appended sequentially, giving the highest store-to-load ratio of
 * the integer codes.
 */
class CompressKernel : public KernelWorkload
{
  public:
    explicit CompressKernel(std::uint64_t seed = 1);

  protected:
    void init() override;
    void step() override;

  private:
    static constexpr unsigned hash_bits = 16;
    static constexpr unsigned hash_size = 1u << hash_bits;

    Addr input_base_ = 0;
    Addr output_base_ = 0;
    Addr htab_base_ = 0;
    Addr codetab_base_ = 0;

    std::uint64_t in_pos_ = 0;
    std::uint64_t out_pos_ = 0;
    std::uint32_t entry_ = 0;
    std::uint32_t free_code_ = 257;
    std::uint32_t hot_base_ = 0;
    RegId entry_reg_ = invalid_reg;   //!< loop-carried prefix code
    std::vector<std::uint32_t> htab_;
};

/**
 * Compiler IR walk (SPEC95 126.gcc).
 *
 * Pointer-structured expression nodes in a compact pool (high spatial
 * locality: several same-line field reads per node, read-modify-write
 * updates), with occasional symbol-table probes into a larger table to
 * produce gcc's small but non-zero miss rate.
 */
class GccKernel : public KernelWorkload
{
  public:
    explicit GccKernel(std::uint64_t seed = 2);

  protected:
    void init() override;
    void step() override;

  private:
    static constexpr unsigned node_bytes = 64;
    static constexpr unsigned pool_nodes = 400;   // 25 KB pool
    static constexpr unsigned symtab_entries = 1u << 13;

    Addr pool_base_ = 0;
    Addr symtab_base_ = 0;
    std::vector<std::uint32_t> next_;  //!< mirrored child links
    std::uint32_t cursor_ = 0;
    RegId chase_reg_ = invalid_reg;    //!< link value feeding next visit
};

/**
 * Game-tree board evaluation (SPEC95 099.go).
 *
 * 19x19 board scans with neighbour reads and pattern-table lookups;
 * compute-heavy (lowest memory fraction of the integer codes) with
 * many branches and modest stores.
 */
class GoKernel : public KernelWorkload
{
  public:
    explicit GoKernel(std::uint64_t seed = 3);

  protected:
    void init() override;
    void step() override;

  private:
    static constexpr unsigned board_dim = 19;
    static constexpr unsigned num_boards = 32;
    static constexpr unsigned pattern_entries = 1u << 13;

    Addr boards_base_ = 0;
    Addr patterns_base_ = 0;
    Addr history_base_ = 0;
    std::uint32_t move_ = 0;
    RegId eval_reg_ = invalid_reg;   //!< carried position evaluation
};

/**
 * Lisp interpreter (SPEC95 130.li).
 *
 * Cons-cell allocation and list traversal in a small recycled pool
 * (tiny miss rate). cons() writes car and cdr of one 16-byte cell
 * (same cache line); traversals chase cdr chains. The highest memory
 * fraction of all ten programs.
 */
class LiKernel : public KernelWorkload
{
  public:
    explicit LiKernel(std::uint64_t seed = 4);

  protected:
    void init() override;
    void step() override;

  private:
    static constexpr unsigned cell_bytes = 16;
    static constexpr unsigned pool_cells = 1536;  // 24 KB pool

    Addr pool_base_ = 0;
    std::vector<std::uint32_t> cdr_;   //!< mirrored cdr links
    std::uint32_t free_head_ = 0;
    std::uint32_t list_head_ = 0;
    std::uint32_t list_len_ = 0;
    std::uint32_t cursor_ = 0;         //!< rotating traversal start
};

/**
 * Text/hash processing (SPEC95 134.perl).
 *
 * Alternates string copies (unit-stride load+store pairs with strong
 * same-line locality) with associative-array probes of a mostly-
 * resident hash table; a large string arena provides occasional
 * misses.
 */
class PerlKernel : public KernelWorkload
{
  public:
    explicit PerlKernel(std::uint64_t seed = 5);

  protected:
    void init() override;
    void step() override;

  private:
    static constexpr unsigned hash_entries = 1u << 10;

    Addr arena_base_ = 0;
    Addr hash_base_ = 0;
    Addr scratch_base_ = 0;
    std::uint64_t arena_pos_ = 0;
    RegId op_reg_ = invalid_reg;     //!< carried op-tree pointer
};

/**
 * 2-D hydrodynamics stencil (SPEC95 104.hydro2d).
 *
 * Row-order sweeps of a grid several times larger than the L1, with
 * east/west neighbours on the same line and north/south neighbours a
 * row apart; moderate stores and a high miss rate.
 */
class Hydro2dKernel : public KernelWorkload
{
  public:
    explicit Hydro2dKernel(std::uint64_t seed = 6);

  protected:
    void init() override;
    void step() override;

  private:
    static constexpr unsigned rows = 256;
    static constexpr unsigned cols = 262;  //!< odd-ish leading dim:
                                           //!< rows rotate banks

    Addr grid_a_ = 0;
    Addr grid_b_ = 0;
    Addr grid_c_ = 0;
    unsigned i_ = 1;
    unsigned j_ = 1;
    RegId flux_reg_ = invalid_reg;   //!< carried flux limiter state
};

/**
 * 3-D multigrid relaxation (SPEC95 107.mgrid).
 *
 * 27-point stencil over a 64^3 double grid; nearly pure loads (the
 * paper reports a 0.04 store-to-load ratio) accumulating into
 * registers, one store per point. Plane-strided neighbours map to
 * different lines, often in the same bank.
 */
class MgridKernel : public KernelWorkload
{
  public:
    explicit MgridKernel(std::uint64_t seed = 7);

  protected:
    void init() override;
    void step() override;

  private:
    static constexpr unsigned dim = 40;   // 512 KB grid

    Addr grid_u_ = 0;
    Addr grid_r_ = 0;
    RegId resid_reg_ = invalid_reg;  //!< carried residual norm
    unsigned x_ = 1;
    unsigned y_ = 1;
    unsigned z_ = 1;
};

/**
 * Quantum chromodynamics lattice (SPEC95 103.su2cor).
 *
 * Complex 3x3 matrix-times-vector products gathered across a 4-D
 * lattice with direction-dependent strides; the highest miss rate of
 * the ten programs.
 */
class Su2corKernel : public KernelWorkload
{
  public:
    explicit Su2corKernel(std::uint64_t seed = 8);

  protected:
    void init() override;
    void step() override;

  private:
    static constexpr unsigned lat_dim = 12;   // 12^4 sites

    Addr links_base_ = 0;
    Addr field_base_ = 0;
    Addr result_base_ = 0;
    std::uint32_t site_ = 0;
    unsigned dir_ = 0;
    RegId action_reg_ = invalid_reg; //!< carried action accumulator
};

/**
 * Shallow-water model (SPEC95 102.swim).
 *
 * Parallel unit-stride sweeps over several 2-D arrays whose bases are
 * aligned to the same bank, so consecutive references hit the same
 * bank in different lines -- the B-diff-line pathology of Figure 3
 * (33.8% for swim) that defeats plain multi-banking.
 */
class SwimKernel : public KernelWorkload
{
  public:
    explicit SwimKernel(std::uint64_t seed = 9);

  protected:
    void init() override;
    void step() override;

  private:
    static constexpr unsigned n_elems = 1u << 16;  // 512 KB per array

    Addr u_ = 0, v_ = 0, p_ = 0;
    Addr unew_ = 0, vnew_ = 0, pnew_ = 0;
    std::uint64_t idx_ = 0;
    RegId check_reg_ = invalid_reg;  //!< carried energy check
};

/**
 * Particle-in-cell plasma simulation (SPEC95 145.wave5).
 *
 * Sequential particle-array reads plus scattered field gathers and
 * charge-deposit writes into a large grid; mixed unit-stride and
 * random access with a high miss rate.
 */
class Wave5Kernel : public KernelWorkload
{
  public:
    explicit Wave5Kernel(std::uint64_t seed = 10);

  protected:
    void init() override;
    void step() override;

  private:
    static constexpr unsigned num_particles = 1u << 15;
    static constexpr unsigned grid_cells = 1u << 16;  // 512 KB field

    Addr particles_base_ = 0;
    Addr field_base_ = 0;
    Addr charge_base_ = 0;
    std::uint32_t particle_ = 0;
    RegId energy_reg_ = invalid_reg; //!< carried energy diagnostic
};

} // namespace lbic

#endif // LBIC_WORKLOAD_KERNELS_HH
