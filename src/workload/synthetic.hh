/**
 * @file
 * Parametric synthetic workloads.
 *
 * These produce precisely controlled reference streams for unit tests
 * and ablation studies: uniform-random addressing, fixed strides,
 * serialized pointer chases, and same-line bursts (the best case for
 * LBIC combining / the worst case for plain banking).
 */

#ifndef LBIC_WORKLOAD_SYNTHETIC_HH
#define LBIC_WORKLOAD_SYNTHETIC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.hh"
#include "workload/workload.hh"

namespace lbic
{

/** Parameters shared by the synthetic workloads. */
struct SyntheticParams
{
    /** Fraction of instructions that are memory operations. */
    double mem_fraction = 0.34;

    /** Fraction of memory operations that are stores. */
    double store_fraction = 0.25;

    /** Base address of the touched region. */
    Addr base = 0x20000000;

    /** Size of the touched region in bytes. */
    Addr region = 1u << 20;

    /** Access size in bytes. */
    unsigned size = 8;

    /** PRNG seed. */
    std::uint64_t seed = 42;
};

/**
 * Independent references with uniformly random addresses: the
 * statistically balanced stream under which multi-banking performs
 * best (paper §3).
 */
class UniformRandomWorkload : public Workload
{
  public:
    explicit UniformRandomWorkload(SyntheticParams params);

    const std::string &name() const override { return name_; }
    bool next(DynInst &inst) override;
    void reset() override;

  private:
    std::string name_ = "uniform";
    SyntheticParams params_;
    RegId next_reg_ = 0;
    Random rng_;
};

/**
 * A fixed-stride sweep (vector-style access). With a stride equal to
 * the bank span every reference hits the same bank: the worst case
 * for multi-banking.
 */
class StridedWorkload : public Workload
{
  public:
    /**
     * @param params common parameters.
     * @param stride byte distance between consecutive references.
     */
    StridedWorkload(SyntheticParams params, Addr stride);

    const std::string &name() const override { return name_; }
    bool next(DynInst &inst) override;
    void reset() override;

  private:
    std::string name_ = "strided";
    SyntheticParams params_;
    Addr stride_;
    Addr pos_ = 0;
    RegId next_reg_ = 0;
    Random rng_;
};

/**
 * A serialized pointer chase: every load's address depends on the
 * previous load's value, so at most one memory access is ready per
 * chain step regardless of how many cache ports exist.
 */
class PointerChaseWorkload : public Workload
{
  public:
    PointerChaseWorkload(SyntheticParams params, unsigned chain_count = 1);

    const std::string &name() const override { return name_; }
    bool next(DynInst &inst) override;
    void reset() override;

  private:
    std::string name_ = "chase";
    SyntheticParams params_;
    unsigned chain_count_;
    std::vector<Addr> pos_;
    std::vector<RegId> dep_;
    unsigned turn_ = 0;
    RegId next_reg_ = 0;
    Random rng_;
};

/**
 * Bursts of independent references into one cache line followed by a
 * jump to another line: maximal same-line locality. A plain banked
 * cache serializes each burst; an LBIC with N line-buffer ports
 * services N per cycle.
 */
class SameLineBurstWorkload : public Workload
{
  public:
    /**
     * @param params common parameters.
     * @param burst references per line before moving on.
     * @param line_bytes cache line size used to space the bursts.
     */
    SameLineBurstWorkload(SyntheticParams params, unsigned burst,
                          unsigned line_bytes = 32);

    const std::string &name() const override { return name_; }
    bool next(DynInst &inst) override;
    void reset() override;

  private:
    std::string name_ = "sameline";
    SyntheticParams params_;
    unsigned burst_;
    unsigned line_bytes_;
    unsigned in_burst_ = 0;
    Addr line_ = 0;
    RegId next_reg_ = 0;
    Random rng_;
};

} // namespace lbic

#endif // LBIC_WORKLOAD_SYNTHETIC_HH
