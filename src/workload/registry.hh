/**
 * @file
 * Workload registry: create workloads by name.
 *
 * Benchmarks and examples look kernels up with strings like
 * "compress" or "swim"; the registry also knows the SPECint/SPECfp
 * grouping used when the paper reports averages.
 */

#ifndef LBIC_WORKLOAD_REGISTRY_HH
#define LBIC_WORKLOAD_REGISTRY_HH

#include <memory>
#include <string>
#include <vector>

#include "workload/workload.hh"

namespace lbic
{

/** Names of the five SPECint-like kernels, in paper order. */
const std::vector<std::string> &specintKernels();

/** Names of the five SPECfp-like kernels, in paper order. */
const std::vector<std::string> &specfpKernels();

/** All ten kernel names, integer first, in paper order. */
const std::vector<std::string> &allKernels();

/**
 * Instantiate a workload by name.
 *
 * Accepts the ten kernel names plus the synthetic names "uniform",
 * "strided", "chase" and "sameline" (with default parameters).
 *
 * @param name workload name.
 * @param seed PRNG seed for the instance.
 * @return a fresh workload; throws SimError (Config) on an unknown
 *         name.
 */
std::unique_ptr<Workload> makeWorkload(const std::string &name,
                                       std::uint64_t seed = 1);

} // namespace lbic

#endif // LBIC_WORKLOAD_REGISTRY_HH
