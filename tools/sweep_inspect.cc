/**
 * @file
 * sweep_inspect: read a sweep flight record (trace_sweep=PATH, see
 * observe/flight_recorder.hh) back as human-readable tables, check
 * its accounting identities, and export a Chrome trace timeline.
 *
 *   sweep_inspect RECORD.jsonl [top=N]
 *       summary + per-job timeline table (queued / running / sim
 *       time, attempts, worker deaths), phase breakdown by exclusive
 *       time, top-N slowest and most-retried jobs, and store lookup
 *       latency histograms split by hit/miss outcome.
 *
 *   sweep_inspect RECORD.jsonl --check
 *       identity gate: verifyFlightRecord() must pass -- span ids
 *       unique, parents present, children contained, and the
 *       telescoping identity excl + sum(children) == dur byte-exact
 *       at every span. Exits 2 on violation. A crash-truncated final
 *       line is reported but tolerated (that is the spill format's
 *       crash contract, not a corruption).
 *
 *   sweep_inspect RECORD.jsonl --chrome OUT.json
 *       write the merged cross-process timeline as a Chrome
 *       trace-event file (load in chrome://tracing or Perfetto).
 *       Coordinator job-lifecycle spans get one swimlane per job.
 *
 * Exit codes: 0 ok, 1 usage/io error, 2 identity violation (--check).
 */

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/table.hh"
#include "observe/flight_recorder.hh"

namespace
{

using namespace lbic;
using observe::FlightRecord;
using observe::SpanEvent;

double
ms(std::int64_t ns)
{
    return static_cast<double>(ns) / 1e6;
}

/** Look up a parsed arg ("" when absent). */
std::string
arg(const SpanEvent &ev, const std::string &key)
{
    const auto it = ev.args.find(key);
    return it == ev.args.end() ? std::string() : it->second;
}

/** Everything the timeline table knows about one job label. */
struct JobStat
{
    std::string label;
    std::string status; //!< from the "resolved" instant
    std::string source; //!< "store" | "simulated"
    std::string note;   //!< death/poison provenance, "" when clean
    unsigned attempts = 0;
    std::size_t runs = 0;   //!< running spans (attempts started)
    std::size_t deaths = 0; //!< running spans that ended in a death
    double queued_ms = 0.0;
    double run_ms = 0.0;
    double sim_ms = 0.0;
};

struct PhaseStat
{
    std::size_t spans = 0;
    std::int64_t incl_ns = 0;
    std::int64_t excl_ns = 0;
};

/** Store-lookup latency histogram: fixed power-of-4 µs buckets. */
constexpr std::int64_t bucket_bounds_us[] = {1, 4, 16, 64, 256, 1024,
                                             4096};
constexpr std::size_t num_buckets =
    sizeof(bucket_bounds_us) / sizeof(bucket_bounds_us[0]) + 1;

std::size_t
bucketOf(std::int64_t dur_ns)
{
    const std::int64_t us = dur_ns / 1000;
    for (std::size_t b = 0; b + 1 < num_buckets; ++b) {
        if (us < bucket_bounds_us[b])
            return b;
    }
    return num_buckets - 1;
}

std::string
bucketLabel(std::size_t b)
{
    if (b + 1 < num_buckets)
        return "<" + std::to_string(bucket_bounds_us[b]) + "us";
    return ">=" + std::to_string(bucket_bounds_us[num_buckets - 2])
        + "us";
}

void
printSummary(const std::string &path, const FlightRecord &rec)
{
    std::size_t spans = 0, instants = 0, metas = 0;
    std::set<int> pids;
    std::int64_t t_min = 0, t_max = 0;
    bool any = false;
    const SpanEvent *sweep_meta = nullptr;
    for (const SpanEvent &ev : rec.events) {
        if (ev.kind == "span")
            ++spans;
        else if (ev.kind == "instant")
            ++instants;
        else if (ev.kind == "meta") {
            ++metas;
            if (ev.name == "sweep")
                sweep_meta = &ev;
        }
        pids.insert(ev.pid);
        const std::int64_t end = ev.ts_ns + ev.dur_ns;
        if (!any || ev.ts_ns < t_min)
            t_min = ev.ts_ns;
        if (!any || end > t_max)
            t_max = end;
        any = true;
    }
    std::cout << "flight record " << path << ": " << rec.events.size()
              << " events (" << spans << " spans, " << instants
              << " instants, " << metas << " meta) from "
              << pids.size() << " process(es)";
    if (any)
        std::cout << ", " << TextTable::fmt(ms(t_max - t_min), 1)
                  << " ms of timeline";
    std::cout << '\n';
    if (sweep_meta) {
        std::cout << "sweep: driver=" << arg(*sweep_meta, "driver")
                  << " config=" << arg(*sweep_meta, "config_hash")
                  << " git_sha=" << arg(*sweep_meta, "git_sha")
                  << " jobs=" << arg(*sweep_meta, "jobs") << '\n';
    }
    if (rec.malformed) {
        std::cout << "note: dropped " << rec.malformed
                  << " malformed line(s)"
                  << (rec.truncated
                          ? " (including a crash-truncated tail)"
                          : "")
                  << '\n';
    }
}

/**
 * Fold the record into per-job stats, keyed by label in first-seen
 * (submission) order. Coordinator sweeps report lifecycle under
 * "job.*", thread-pool sweeps under "sweep.*"; both feed the same
 * columns so the table reads identically either way.
 */
std::vector<JobStat>
foldJobs(const FlightRecord &rec)
{
    std::vector<JobStat> jobs;
    std::map<std::string, std::size_t> index;
    const auto at = [&](const std::string &label) -> JobStat & {
        auto it = index.find(label);
        if (it == index.end()) {
            it = index.emplace(label, jobs.size()).first;
            jobs.emplace_back();
            jobs.back().label = label;
        }
        return jobs[it->second];
    };
    for (const SpanEvent &ev : rec.events) {
        if (ev.job.empty())
            continue;
        JobStat &j = at(ev.job);
        const std::string key = ev.cat + "." + ev.name;
        if (ev.kind == "instant") {
            if (key == "job.resolved") {
                j.status = arg(ev, "status");
                j.source = arg(ev, "source");
                j.attempts = static_cast<unsigned>(
                    std::strtoul(arg(ev, "attempts").c_str(), nullptr,
                                 10));
                // A poison note (below) is the sharper diagnosis;
                // keep it over the resolved instant's raw kind.
                if (j.note.empty()) {
                    const std::string kind = arg(ev, "kind");
                    if (!kind.empty())
                        j.note = kind;
                    const std::string sig = arg(ev, "signal");
                    if (!sig.empty())
                        j.note += (j.note.empty() ? "" : " ") + sig;
                }
            } else if (key == "job.poison") {
                j.note = "poisoned after " + arg(ev, "deaths")
                    + " deaths";
                const std::string sig = arg(ev, "signal");
                if (!sig.empty())
                    j.note += " (" + sig + ")";
            }
            continue;
        }
        if (ev.kind != "span")
            continue;
        if (key == "job.queued" || key == "sweep.queue_wait") {
            j.queued_ms += ms(ev.dur_ns);
        } else if (key == "job.running" || key == "sweep.running") {
            j.run_ms += ms(ev.dur_ns);
            ++j.runs;
            if (arg(ev, "status") == "died")
                ++j.deaths;
        } else if (key == "sim.simulate") {
            j.sim_ms += ms(ev.dur_ns);
        }
    }
    return jobs;
}

void
printTimeline(const std::vector<JobStat> &jobs)
{
    std::cout << "\nper-job timeline (" << jobs.size() << " jobs):\n";
    TextTable table;
    table.setHeader({"job", "status", "src", "att", "queued_ms",
                     "run_ms", "sim_ms", "deaths", "note"});
    for (const JobStat &j : jobs) {
        table.addRow({j.label,
                      j.status.empty() ? "?" : j.status,
                      j.source.empty() ? "-" : j.source,
                      std::to_string(j.attempts),
                      TextTable::fmt(j.queued_ms, 2),
                      TextTable::fmt(j.run_ms, 2),
                      TextTable::fmt(j.sim_ms, 2),
                      std::to_string(j.deaths), j.note});
    }
    table.print(std::cout);
}

void
printPhases(const FlightRecord &rec)
{
    std::map<std::string, PhaseStat> phases;
    std::int64_t total_excl = 0;
    for (const SpanEvent &ev : rec.events) {
        if (ev.kind != "span")
            continue;
        PhaseStat &p = phases[ev.cat + "." + ev.name];
        ++p.spans;
        p.incl_ns += ev.dur_ns;
        p.excl_ns += ev.excl_ns;
        total_excl += ev.excl_ns;
    }
    if (phases.empty())
        return;
    // Exclusive time is the critical-path currency: it sums to the
    // root durations exactly (the telescoping identity), so the
    // percentages below add up -- inclusive double-counts nesting.
    std::vector<std::pair<std::string, PhaseStat>> order(
        phases.begin(), phases.end());
    std::sort(order.begin(), order.end(),
              [](const auto &a, const auto &b) {
                  return a.second.excl_ns > b.second.excl_ns;
              });
    std::cout << "\nphase breakdown (by exclusive time):\n";
    TextTable table;
    table.setHeader({"phase", "spans", "excl_ms", "incl_ms", "excl%"});
    for (const auto &kv : order) {
        const PhaseStat &p = kv.second;
        table.addRow({kv.first, std::to_string(p.spans),
                      TextTable::fmt(ms(p.excl_ns), 2),
                      TextTable::fmt(ms(p.incl_ns), 2),
                      TextTable::fmt(
                          total_excl
                              ? 100.0 * static_cast<double>(p.excl_ns)
                                  / static_cast<double>(total_excl)
                              : 0.0,
                          1)});
    }
    table.print(std::cout);
}

void
printTop(const std::vector<JobStat> &jobs, std::size_t top_n)
{
    std::vector<const JobStat *> order;
    order.reserve(jobs.size());
    for (const JobStat &j : jobs)
        order.push_back(&j);

    std::sort(order.begin(), order.end(),
              [](const JobStat *a, const JobStat *b) {
                  return a->run_ms > b->run_ms;
              });
    std::cout << "\ntop " << std::min(top_n, order.size())
              << " slowest jobs (by running time):\n";
    TextTable slow;
    slow.setHeader({"job", "run_ms", "sim_ms", "att"});
    for (std::size_t i = 0; i < order.size() && i < top_n; ++i) {
        slow.addRow({order[i]->label,
                     TextTable::fmt(order[i]->run_ms, 2),
                     TextTable::fmt(order[i]->sim_ms, 2),
                     std::to_string(order[i]->attempts)});
    }
    slow.print(std::cout);

    std::sort(order.begin(), order.end(),
              [](const JobStat *a, const JobStat *b) {
                  return a->attempts > b->attempts;
              });
    std::size_t retried = 0;
    for (const JobStat *j : order)
        retried += j->attempts > 1 ? 1 : 0;
    if (!retried)
        return;
    std::cout << "\nretried jobs (" << retried << "):\n";
    TextTable retry;
    retry.setHeader({"job", "att", "deaths", "status", "note"});
    for (std::size_t i = 0; i < order.size() && i < top_n; ++i) {
        if (order[i]->attempts <= 1)
            break;
        retry.addRow({order[i]->label,
                      std::to_string(order[i]->attempts),
                      std::to_string(order[i]->deaths),
                      order[i]->status, order[i]->note});
    }
    retry.print(std::cout);
}

void
printStore(const FlightRecord &rec)
{
    // outcome -> per-bucket counts; outcomes are the store.lookup
    // span's "outcome" arg (hit / miss / quarantined).
    std::map<std::string, std::vector<std::size_t>> hist;
    std::size_t lookups = 0, publishes = 0;
    std::int64_t publish_ns = 0;
    for (const SpanEvent &ev : rec.events) {
        if (ev.kind != "span" || ev.cat != "store")
            continue;
        if (ev.name == "lookup") {
            ++lookups;
            auto &h = hist[arg(ev, "outcome")];
            h.resize(num_buckets);
            ++h[bucketOf(ev.dur_ns)];
        } else if (ev.name == "publish") {
            ++publishes;
            publish_ns += ev.dur_ns;
        }
    }
    if (!lookups)
        return;
    std::cout << "\nstore lookup latency (" << lookups
              << " lookups):\n";
    TextTable table;
    std::vector<std::string> header = {"latency"};
    for (const auto &kv : hist)
        header.push_back(kv.first.empty() ? "?" : kv.first);
    table.setHeader(header);
    for (std::size_t b = 0; b < num_buckets; ++b) {
        std::vector<std::string> row = {bucketLabel(b)};
        for (const auto &kv : hist)
            row.push_back(std::to_string(kv.second[b]));
        table.addRow(row);
    }
    table.print(std::cout);
    if (publishes) {
        std::cout << publishes << " publishes, "
                  << TextTable::fmt(ms(publish_ns), 2)
                  << " ms total\n";
    }
}

int
usage()
{
    std::cerr
        << "usage: sweep_inspect RECORD.jsonl [--check] "
           "[--chrome OUT.json] [top=N]\n";
    return 1;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string record_path, chrome_path;
    bool check = false;
    std::size_t top_n = 5;
    for (int i = 1; i < argc; ++i) {
        const std::string a(argv[i]);
        if (a == "--check") {
            check = true;
        } else if (a == "--chrome") {
            if (++i >= argc)
                return usage();
            chrome_path = argv[i];
        } else if (a.rfind("top=", 0) == 0) {
            top_n = std::strtoul(a.c_str() + 4, nullptr, 10);
        } else if (!a.empty() && a[0] == '-') {
            return usage();
        } else if (record_path.empty()) {
            record_path = a;
        } else {
            return usage();
        }
    }
    if (record_path.empty())
        return usage();

    const FlightRecord rec = observe::loadFlightRecord(record_path);
    if (rec.events.empty()) {
        std::cerr << "sweep_inspect: no events in '" << record_path
                  << "'\n";
        return 1;
    }

    if (check) {
        const std::string err = observe::verifyFlightRecord(rec);
        if (!err.empty()) {
            std::cerr << "sweep_inspect: identity violation: " << err
                      << '\n';
            return 2;
        }
        std::cout << "check ok: " << rec.events.size()
                  << " events, identities hold";
        if (rec.truncated)
            std::cout << " (crash-truncated tail dropped)";
        std::cout << '\n';
    }

    if (!chrome_path.empty()) {
        std::ofstream out(chrome_path);
        if (!out) {
            std::cerr << "sweep_inspect: cannot write '" << chrome_path
                      << "'\n";
            return 1;
        }
        const std::size_t n = observe::exportChromeTrace(rec, out);
        std::cout << "wrote " << n << " trace events to "
                  << chrome_path << '\n';
    }

    if (check || !chrome_path.empty())
        return 0;

    printSummary(record_path, rec);
    const std::vector<JobStat> jobs = foldJobs(rec);
    if (!jobs.empty()) {
        printTimeline(jobs);
        printTop(jobs, top_n);
    }
    printPhases(rec);
    printStore(rec);
    return 0;
}
