/**
 * @file
 * Regenerate the golden trace prefixes committed under tests/data/.
 *
 * Each kernel workload is deterministic (name + seed reproduce the
 * stream), so a committed prefix of its trace pins the reference
 * stream across refactors: the trace-replay regression suite captures
 * the first 1000 instructions of every kernel at seed 1 and compares
 * byte-for-byte against these files. If a workload generator changes
 * intentionally, rerun this tool and commit the new files together
 * with the change that motivated them.
 *
 * Usage: gen_golden_traces <output-dir>
 */

#include <fstream>
#include <iostream>
#include <string>

#include "workload/registry.hh"
#include "workload/trace.hh"

namespace
{

constexpr std::uint64_t golden_insts = 1000;
constexpr std::uint64_t golden_seed = 1;

} // anonymous namespace

int
main(int argc, char **argv)
{
    if (argc != 2) {
        std::cerr << "usage: gen_golden_traces <output-dir>\n";
        return 2;
    }
    const std::string dir = argv[1];
    for (const std::string &name : lbic::allKernels()) {
        const auto workload = lbic::makeWorkload(name, golden_seed);
        const std::string path = dir + "/" + name + ".trace";
        std::ofstream os(path, std::ios::binary);
        if (!os) {
            std::cerr << "cannot open " << path << " for writing\n";
            return 1;
        }
        const std::uint64_t n =
            lbic::TraceWriter::capture(*workload, os, golden_insts);
        os.flush();
        if (!os) {
            std::cerr << "write to " << path << " failed\n";
            return 1;
        }
        std::cout << path << ": " << n << " records\n";
    }
    return 0;
}
