/**
 * @file
 * Generate binary traces for the paper kernels.
 *
 * Default mode regenerates the golden trace prefixes committed under
 * tests/data/: each kernel workload is deterministic (name + seed
 * reproduce the stream), so a committed prefix of its trace pins the
 * reference stream across refactors. The trace-replay regression suite
 * captures the first 1000 instructions of every kernel at seed 1 and
 * compares byte-for-byte against these files. If a workload generator
 * changes intentionally, rerun this tool and commit the new files
 * together with the change that motivated them.
 *
 * With `insts=N` the tool instead emits full-length traces (N records
 * per kernel) suitable for the replay backend's `replay=` /
 * `trace=DIR` knobs -- pre-generate once, replay across a whole
 * design-space sweep.
 *
 * Usage: gen_golden_traces <output-dir> [insts=N] [seed=S] [check=1]
 *
 *   insts=N   records per kernel (default 1000, the golden prefix)
 *   seed=S    workload PRNG seed (default 1)
 *   check=1   after writing, size/format-check each file: the byte
 *             size must match the header plus exactly N fixed-size
 *             records, and every record must decode cleanly (magic,
 *             version, op-class range)
 */

#include <fstream>
#include <iostream>
#include <string>

#include "common/sim_error.hh"
#include "workload/registry.hh"
#include "workload/replay.hh"
#include "workload/trace.hh"

namespace
{

constexpr std::uint64_t golden_insts = 1000;
constexpr std::uint64_t golden_seed = 1;

/** Size/format sanity check; returns false (and explains) on failure. */
bool
checkTrace(const std::string &path, std::uint64_t expect_records)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        std::cerr << path << ": cannot reopen for checking\n";
        return false;
    }
    is.seekg(0, std::ios::end);
    const auto bytes = static_cast<std::uint64_t>(is.tellg());
    const std::uint64_t expect_bytes = lbic::trace_header_bytes
        + expect_records * lbic::trace_record_bytes;
    if (bytes != expect_bytes) {
        std::cerr << path << ": " << bytes << " bytes, expected "
                  << expect_bytes << " (" << expect_records
                  << " records)\n";
        return false;
    }
    is.seekg(0);
    try {
        lbic::TraceReplayWorkload replay(is);
        if (replay.size() != expect_records) {
            std::cerr << path << ": decoded " << replay.size()
                      << " records, expected " << expect_records
                      << "\n";
            return false;
        }
    } catch (const lbic::SimError &e) {
        std::cerr << path << ": " << e.what() << "\n";
        return false;
    }
    return true;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::cerr << "usage: gen_golden_traces <output-dir> [insts=N] "
                     "[seed=S] [check=1]\n";
        return 2;
    }
    const std::string dir = argv[1];
    std::uint64_t insts = golden_insts;
    std::uint64_t seed = golden_seed;
    bool check = false;
    for (int i = 2; i < argc; ++i) {
        const std::string arg(argv[i]);
        if (arg.rfind("insts=", 0) == 0)
            insts = std::stoull(arg.substr(6));
        else if (arg.rfind("seed=", 0) == 0)
            seed = std::stoull(arg.substr(5));
        else if (arg == "check=1")
            check = true;
        else if (arg == "check=0")
            check = false;
        else {
            std::cerr << "unrecognized argument '" << arg << "'\n";
            return 2;
        }
    }

    bool ok = true;
    for (const std::string &name : lbic::allKernels()) {
        const std::string path = dir + "/" + name + ".trace";
        std::uint64_t n = 0;
        try {
            n = lbic::writeTraceFile(path, name, seed, insts);
        } catch (const lbic::SimError &e) {
            std::cerr << e.what() << "\n";
            return 1;
        }
        if (n != insts) {
            std::cerr << path << ": stream ended after " << n << " of "
                      << insts << " records\n";
            return 1;
        }
        std::cout << path << ": " << n << " records\n";
        if (check)
            ok = checkTrace(path, n) && ok;
    }
    if (check)
        std::cout << (ok ? "all traces check out\n"
                         : "trace check FAILED\n");
    return ok ? 0 : 1;
}
