/**
 * @file
 * perf_report: read the persistent run ledger back as trend tables,
 * SHA-to-SHA diffs and a CI regression gate.
 *
 *   perf_report [ledger=results/ledger.jsonl] [driver=NAME]
 *       trend tables: one row per recorded sweep (a (git_sha,
 *       config_hash, timestamp) group), with run counts, mean IPC and
 *       aggregate host throughput.
 *
 *   perf_report diff=SHA1,SHA2 [driver=NAME]
 *       per-run comparison of the two trees: runs are matched on
 *       (driver, workload, port_spec, seed, insts, label) and the IPC
 *       and throughput deltas reported. "last" and "prev" name the
 *       two most recent distinct SHAs in the ledger.
 *
 *   perf_report [--spans DIR] ...
 *       join trend rows with sweep flight records (trace_sweep=PATH,
 *       observe/flight_recorder.hh): DIR is scanned for *.jsonl
 *       records, matched to sweeps on the (driver, config_hash,
 *       git_sha) identity stamped in each record's sweep meta event,
 *       and the trend table gains the sweep's critical phase -- the
 *       cat.name with the largest total exclusive time -- and its
 *       milliseconds.
 *
 *   perf_report --check [--warn-only] [baseline=results/perf_baseline.json]
 *       [threshold=0.25]
 *       regression gate: the most recent sweep of the baseline's
 *       driver must sustain min_insts_per_s aggregate throughput, and
 *       must not have slowed by more than `threshold` (fractional)
 *       against the previous recorded SHA of the same config_hash.
 *       Exits 2 on violation (0 with --warn-only, which still prints
 *       the verdicts).
 *
 * Exit codes: 0 ok, 1 usage/io error, 2 regression (--check).
 */

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <dirent.h>

#include "common/config.hh"
#include "common/sim_error.hh"
#include "common/table.hh"
#include "observe/flight_recorder.hh"
#include "observe/ledger.hh"

namespace
{

using namespace lbic;
using observe::LedgerEntry;

/**
 * One recorded sweep: every ledger line sharing (driver, git_sha,
 * config_hash, timestamp). A driver invocation appends its whole grid
 * in one atomic batch with one shared timestamp, so this grouping
 * reconstructs the original sweeps exactly.
 */
struct Sweep
{
    std::string driver, git_sha, config_hash, timestamp;
    std::vector<const LedgerEntry *> runs;

    std::size_t okRuns() const
    {
        std::size_t n = 0;
        for (const auto *e : runs)
            n += e->status == "ok" ? 1 : 0;
        return n;
    }

    double meanIpc() const
    {
        double sum = 0.0;
        std::size_t n = 0;
        for (const auto *e : runs) {
            if (e->status == "ok") {
                sum += e->ipc;
                ++n;
            }
        }
        return n ? sum / static_cast<double>(n) : 0.0;
    }

    std::uint64_t totalInsts() const
    {
        std::uint64_t sum = 0;
        for (const auto *e : runs)
            sum += e->instructions;
        return sum;
    }

    double totalWallMs() const
    {
        double sum = 0.0;
        for (const auto *e : runs)
            sum += e->wall_ms;
        return sum;
    }

    /** Aggregate host throughput: simulated insts per summed-run-wall
     *  second. Per-run wall (not sweep wall) so the number is
     *  comparable across different jobs= settings. */
    double instsPerSec() const
    {
        const double ms = totalWallMs();
        return ms > 0.0
                   ? static_cast<double>(totalInsts()) / (ms / 1000.0)
                   : 0.0;
    }

    /** Runs that recorded a sampling CI (ledger extra ci_valid=1). */
    std::size_t ciCells() const
    {
        std::size_t n = 0;
        for (const auto *e : runs) {
            const auto it = e->extra.find("ci_valid");
            n += (it != e->extra.end() && it->second == "1") ? 1 : 0;
        }
        return n;
    }

    /** Of the CI cells, how many converged to their target. */
    std::size_t ciConverged() const
    {
        std::size_t n = 0;
        for (const auto *e : runs) {
            if (!e->extra.count("ci_valid")
                || e->extra.at("ci_valid") != "1")
                continue;
            const auto it = e->extra.find("ci_converged");
            n += (it != e->extra.end() && it->second == "1") ? 1 : 0;
        }
        return n;
    }

    /** Worst (largest) relative half-width across the CI cells --
     *  the precision the whole sweep can actually claim. */
    double worstRelHalfWidth() const
    {
        double worst = 0.0;
        for (const auto *e : runs) {
            if (!e->extra.count("ci_valid")
                || e->extra.at("ci_valid") != "1")
                continue;
            const auto it = e->extra.find("ci_rel_half_width");
            if (it == e->extra.end())
                continue;
            worst = std::max(worst,
                             std::strtod(it->second.c_str(), nullptr));
        }
        return worst;
    }

    /** Total intervals simulated across the CI cells: what the
     *  precision cost, in units the adaptive loop spends. */
    std::uint64_t ciIntervals() const
    {
        std::uint64_t sum = 0;
        for (const auto *e : runs) {
            const auto it = e->extra.find("ci_intervals");
            if (it != e->extra.end())
                sum += std::strtoull(it->second.c_str(), nullptr, 10);
        }
        return sum;
    }
};

/** Group ledger entries into sweeps, preserving ledger (time) order. */
std::vector<Sweep>
groupSweeps(const std::vector<LedgerEntry> &entries,
            const std::string &driver_filter)
{
    std::vector<Sweep> sweeps;
    std::map<std::string, std::size_t> index;
    for (const LedgerEntry &e : entries) {
        if (!driver_filter.empty() && e.driver != driver_filter)
            continue;
        const std::string key = e.driver + "\x1f" + e.git_sha + "\x1f"
            + e.config_hash + "\x1f" + e.timestamp;
        auto it = index.find(key);
        if (it == index.end()) {
            it = index.emplace(key, sweeps.size()).first;
            Sweep s;
            s.driver = e.driver;
            s.git_sha = e.git_sha;
            s.config_hash = e.config_hash;
            s.timestamp = e.timestamp;
            sweeps.push_back(std::move(s));
        }
        sweeps[it->second].runs.push_back(&e);
    }
    return sweeps;
}

std::string
shortSha(const std::string &sha)
{
    return sha.size() > 12 ? sha.substr(0, 12) : sha;
}

/** A flight record's contribution to the trend table. */
struct SpanJoin
{
    std::string crit_phase; //!< cat.name with max total exclusive ns
    double crit_ms = 0.0;
};

/**
 * Scan @p dir for *.jsonl flight records and index each by the
 * (driver, config_hash, git_sha) identity its sweep meta event
 * carries -- the same tuple the ledger rows hold, which is the join
 * key. Records without a sweep meta (worker fragments, foreign files)
 * are skipped; a later file with the same identity supersedes.
 */
std::map<std::string, SpanJoin>
loadSpanJoins(const std::string &dir)
{
    std::map<std::string, SpanJoin> joins;
    DIR *d = opendir(dir.c_str());
    if (!d)
        throw SimError(SimErrorKind::Config,
                       "cannot open spans directory '" + dir + "'");
    std::vector<std::string> files;
    while (const dirent *ent = readdir(d)) {
        const std::string name = ent->d_name;
        if (name.size() > 6
            && name.compare(name.size() - 6, 6, ".jsonl") == 0)
            files.push_back(dir + "/" + name);
    }
    closedir(d);
    std::sort(files.begin(), files.end());
    for (const std::string &path : files) {
        const observe::FlightRecord rec =
            observe::loadFlightRecord(path);
        std::string key;
        std::map<std::string, std::int64_t> excl;
        for (const observe::SpanEvent &ev : rec.events) {
            if (ev.kind == "meta" && ev.name == "sweep") {
                const auto get = [&](const char *k) {
                    const auto it = ev.args.find(k);
                    return it == ev.args.end() ? std::string()
                                               : it->second;
                };
                key = get("driver") + "\x1f" + get("config_hash")
                    + "\x1f" + get("git_sha");
            } else if (ev.kind == "span") {
                excl[ev.cat + "." + ev.name] += ev.excl_ns;
            }
        }
        if (key.empty() || excl.empty())
            continue;
        SpanJoin join;
        std::int64_t best = -1;
        for (const auto &kv : excl) {
            if (kv.second > best) {
                best = kv.second;
                join.crit_phase = kv.first;
                join.crit_ms =
                    static_cast<double>(kv.second) / 1e6;
            }
        }
        joins[key] = join;
    }
    return joins;
}

int
modeTrend(const std::vector<LedgerEntry> &entries,
          const std::string &driver_filter,
          const std::map<std::string, SpanJoin> &joins)
{
    const std::vector<Sweep> sweeps =
        groupSweeps(entries, driver_filter);
    if (sweeps.empty()) {
        std::cout << "ledger holds no "
                  << (driver_filter.empty()
                          ? "entries"
                          : "entries for driver '" + driver_filter
                                + "'")
                  << "\n";
        return 0;
    }
    // One table per driver, sweeps in append (chronological) order.
    std::map<std::string, std::vector<const Sweep *>> by_driver;
    for (const Sweep &s : sweeps)
        by_driver[s.driver].push_back(&s);
    for (const auto &kv : by_driver) {
        std::cout << "driver " << kv.first << ":\n";
        TextTable table;
        // CI columns appear only when some sweep of this driver
        // recorded sampling confidence intervals (schema v6 ledgers);
        // older ledgers keep the v5 table shape byte-for-byte.
        bool any_ci = false;
        for (const Sweep *s : kv.second)
            any_ci = any_ci || s->ciCells() > 0;
        std::vector<std::string> header = {
            "timestamp", "git_sha", "config", "runs", "ok",
            "mean_ipc", "Minsts", "wall_s", "Minst/s"};
        if (any_ci) {
            header.push_back("ci_cells");
            header.push_back("conv");
            header.push_back("max_rhw");
            header.push_back("ivals");
        }
        if (!joins.empty()) {
            header.push_back("crit_phase");
            header.push_back("crit_ms");
        }
        table.setHeader(header);
        for (const Sweep *s : kv.second) {
            std::vector<std::string> row = {
                s->timestamp, shortSha(s->git_sha),
                s->config_hash.substr(0, 8),
                std::to_string(s->runs.size()),
                std::to_string(s->okRuns()),
                TextTable::fmt(s->meanIpc(), 4),
                TextTable::fmt(
                    static_cast<double>(s->totalInsts()) / 1e6, 2),
                TextTable::fmt(s->totalWallMs() / 1000.0, 2),
                TextTable::fmt(s->instsPerSec() / 1e6, 2)};
            if (any_ci) {
                const std::size_t ci = s->ciCells();
                row.push_back(std::to_string(ci));
                row.push_back(ci ? std::to_string(s->ciConverged())
                                 : "-");
                row.push_back(
                    ci ? TextTable::fmt(s->worstRelHalfWidth(), 4)
                       : "-");
                row.push_back(ci ? std::to_string(s->ciIntervals())
                                 : "-");
            }
            if (!joins.empty()) {
                const auto it = joins.find(s->driver + "\x1f"
                                           + s->config_hash + "\x1f"
                                           + s->git_sha);
                row.push_back(it == joins.end() ? "-"
                                                : it->second.crit_phase);
                row.push_back(it == joins.end()
                                  ? "-"
                                  : TextTable::fmt(
                                        it->second.crit_ms, 2));
            }
            table.addRow(row);
        }
        table.print(std::cout);
        std::cout << '\n';
    }
    return 0;
}

/** The run-matching key for SHA-to-SHA diffs. */
std::string
runKey(const LedgerEntry &e)
{
    return e.driver + "\x1f" + e.workload + "\x1f" + e.port_spec
        + "\x1f" + std::to_string(e.seed) + "\x1f"
        + std::to_string(e.insts) + "\x1f" + e.label;
}

/**
 * Resolve a diff operand: a literal SHA (any unique prefix), or
 * "last" / "prev" for the two most recent distinct SHAs.
 */
std::string
resolveSha(const std::vector<LedgerEntry> &entries,
           const std::string &spec, const std::string &driver_filter)
{
    std::vector<std::string> order; // distinct SHAs, oldest first
    for (const LedgerEntry &e : entries) {
        if (!driver_filter.empty() && e.driver != driver_filter)
            continue;
        if (std::find(order.begin(), order.end(), e.git_sha)
            == order.end())
            order.push_back(e.git_sha);
    }
    if (spec == "last" || spec == "prev") {
        const std::size_t back = spec == "last" ? 1 : 2;
        if (order.size() < back)
            throw SimError(SimErrorKind::Config,
                           "ledger holds fewer than "
                               + std::to_string(back)
                               + " distinct git SHAs");
        return order[order.size() - back];
    }
    for (const std::string &sha : order) {
        if (sha.rfind(spec, 0) == 0)
            return sha;
    }
    throw SimError(SimErrorKind::Config,
                   "git SHA '" + spec + "' not found in ledger");
}

int
modeDiff(const std::vector<LedgerEntry> &entries,
         const std::string &spec, const std::string &driver_filter)
{
    const auto comma = spec.find(',');
    if (comma == std::string::npos)
        throw SimError(SimErrorKind::Config,
                       "diff= needs two comma-separated SHAs "
                       "(or prev,last)");
    const std::string sha_a =
        resolveSha(entries, spec.substr(0, comma), driver_filter);
    const std::string sha_b =
        resolveSha(entries, spec.substr(comma + 1), driver_filter);

    // Latest entry per run key on each side (a SHA rerun supersedes).
    std::map<std::string, const LedgerEntry *> a, b;
    for (const LedgerEntry &e : entries) {
        if (!driver_filter.empty() && e.driver != driver_filter)
            continue;
        if (e.git_sha == sha_a)
            a[runKey(e)] = &e;
        else if (e.git_sha == sha_b)
            b[runKey(e)] = &e;
    }

    std::cout << "diff " << shortSha(sha_a) << " -> "
              << shortSha(sha_b) << ":\n";
    TextTable table;
    table.setHeader({"run", "ipc_a", "ipc_b", "dipc", "Minst/s_a",
                     "Minst/s_b", "speed"});
    std::size_t matched = 0;
    double ipc_ratio_sum = 0.0, speed_ratio_sum = 0.0;
    std::size_t speed_n = 0;
    for (const auto &kv : a) {
        const auto it = b.find(kv.first);
        if (it == b.end())
            continue;
        const LedgerEntry &ea = *kv.second;
        const LedgerEntry &eb = *it->second;
        if (ea.status != "ok" || eb.status != "ok")
            continue;
        ++matched;
        ipc_ratio_sum += ea.ipc > 0.0 ? eb.ipc / ea.ipc : 1.0;
        std::string speed = "-";
        if (ea.insts_per_sec > 0.0 && eb.insts_per_sec > 0.0) {
            const double r = eb.insts_per_sec / ea.insts_per_sec;
            speed_ratio_sum += r;
            ++speed_n;
            speed = TextTable::fmt(r, 2) + "x";
        }
        table.addRow({ea.label, TextTable::fmt(ea.ipc, 4),
                      TextTable::fmt(eb.ipc, 4),
                      TextTable::fmt(eb.ipc - ea.ipc, 4),
                      TextTable::fmt(ea.insts_per_sec / 1e6, 2),
                      TextTable::fmt(eb.insts_per_sec / 1e6, 2),
                      speed});
    }
    table.print(std::cout);
    if (matched == 0) {
        std::cout << "no matching ok runs between the two SHAs\n";
        return 0;
    }
    std::cout << '\n' << matched << " matched runs; mean IPC ratio "
              << TextTable::fmt(
                     ipc_ratio_sum / static_cast<double>(matched), 4);
    if (speed_n)
        std::cout << ", mean host-speed ratio "
                  << TextTable::fmt(speed_ratio_sum
                                        / static_cast<double>(speed_n),
                                    2)
                  << "x";
    std::cout << '\n';
    return 0;
}

int
modeCheck(const std::vector<LedgerEntry> &entries,
          const std::string &baseline_path, double threshold,
          bool warn_only, std::string driver_filter)
{
    // The baseline is one flat JSON object; LedgerEntry's parser
    // reads it (known keys into fields, thresholds into extra).
    std::ifstream in(baseline_path);
    if (!in)
        throw SimError(SimErrorKind::Config,
                       "cannot read baseline '" + baseline_path + "'");
    std::stringstream ss;
    ss << in.rdbuf();
    LedgerEntry baseline;
    if (!LedgerEntry::fromJson(ss.str(), baseline))
        throw SimError(SimErrorKind::Config,
                       "baseline '" + baseline_path
                           + "' is not a flat JSON object");
    if (driver_filter.empty())
        driver_filter = baseline.driver;
    const double min_ips = baseline.extra.count("min_insts_per_s")
        ? std::strtod(baseline.extra.at("min_insts_per_s").c_str(),
                      nullptr)
        : 0.0;

    const std::vector<Sweep> sweeps =
        groupSweeps(entries, driver_filter);
    if (sweeps.empty())
        throw SimError(SimErrorKind::Config,
                       "ledger holds no sweeps for driver '"
                           + driver_filter + "'");
    const Sweep &latest = sweeps.back();
    const double ips = latest.instsPerSec();

    bool failed = false;
    std::cout << "check driver " << driver_filter << " @ "
              << shortSha(latest.git_sha) << " (" << latest.timestamp
              << "): " << TextTable::fmt(ips / 1e6, 2) << " Minst/s, "
              << latest.okRuns() << "/" << latest.runs.size()
              << " runs ok\n";

    if (latest.okRuns() != latest.runs.size()) {
        std::cout << "  FAIL: "
                  << latest.runs.size() - latest.okRuns()
                  << " failed runs in the latest sweep\n";
        failed = true;
    }
    if (min_ips > 0.0) {
        if (ips < min_ips) {
            std::cout << "  FAIL: throughput below baseline floor ("
                      << TextTable::fmt(ips / 1e6, 2) << " < "
                      << TextTable::fmt(min_ips / 1e6, 2)
                      << " Minst/s)\n";
            failed = true;
        } else {
            std::cout << "  ok: above baseline floor "
                      << TextTable::fmt(min_ips / 1e6, 2)
                      << " Minst/s\n";
        }
    }

    // Regression vs history: the most recent *earlier-SHA* sweep of
    // the same config_hash (like-for-like grid only).
    const Sweep *prev = nullptr;
    for (const Sweep &s : sweeps) {
        if (s.git_sha != latest.git_sha
            && s.config_hash == latest.config_hash)
            prev = &s;
    }
    if (prev) {
        const double prev_ips = prev->instsPerSec();
        if (prev_ips > 0.0) {
            const double drop = 1.0 - ips / prev_ips;
            if (drop > threshold) {
                std::cout << "  FAIL: "
                          << TextTable::fmt(drop * 100.0, 1)
                          << "% slower than " << shortSha(prev->git_sha)
                          << " (threshold "
                          << TextTable::fmt(threshold * 100.0, 1)
                          << "%)\n";
                failed = true;
            } else {
                std::cout << "  ok: vs " << shortSha(prev->git_sha)
                          << " speed ratio "
                          << TextTable::fmt(ips / prev_ips, 2) << "x\n";
            }
        }
    } else {
        std::cout << "  note: no earlier SHA with the same config in "
                     "the ledger; floor check only\n";
    }

    if (failed && warn_only) {
        std::cout << "WARN (--warn-only): regression detected but not "
                     "failing the build\n";
        return 0;
    }
    return failed ? 2 : 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
try {
    std::vector<const char *> kv;
    bool check = false, warn_only = false;
    std::string spans_dir;
    for (int i = 0; i < argc; ++i) {
        const std::string arg(argv[i]);
        if (arg == "--check")
            check = true;
        else if (arg == "--warn-only")
            warn_only = true;
        else if (arg == "--spans" && i + 1 < argc)
            spans_dir = argv[++i];
        else
            kv.push_back(argv[i]);
    }
    const Config args =
        Config::fromArgs(static_cast<int>(kv.size()), kv.data());
    const std::string ledger_path = observe::resolveLedgerPath(
        args.getString("ledger", "auto"));
    const std::string baseline =
        args.getString("baseline", "results/perf_baseline.json");
    const std::string diff = args.getString("diff", "");
    const std::string driver = args.getString("driver", "");
    const double threshold = args.getDouble("threshold", 0.25);
    args.rejectUnrecognized();

    if (ledger_path.empty()) {
        std::cerr << "perf_report: no ledger configured (pass "
                     "ledger=PATH or run from the repo root)\n";
        return 1;
    }
    const observe::LedgerReadResult ledger =
        observe::loadLedger(ledger_path);
    if (ledger.malformed)
        std::cerr << "perf_report: dropped " << ledger.malformed
                  << " malformed line(s)"
                  << (ledger.truncated
                          ? " (including a crash-truncated tail)"
                          : "")
                  << " from " << ledger_path << '\n';

    if (check)
        return modeCheck(ledger.entries, baseline, threshold,
                         warn_only, driver);
    if (!diff.empty())
        return modeDiff(ledger.entries, diff, driver);
    return modeTrend(ledger.entries, driver,
                     spans_dir.empty()
                         ? std::map<std::string, SpanJoin>()
                         : loadSpanJoins(spans_dir));
} catch (const lbic::SimError &e) {
    std::cerr << "perf_report: " << e.what() << '\n';
    return 1;
}
